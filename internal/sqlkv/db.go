package sqlkv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects which of the paper's two SQLite configurations the engine
// emulates.
type Mode int

const (
	// ModeReg is SQLiteReg: WAL journaling, a backing database file, and a
	// private page cache per connection.
	ModeReg Mode = iota
	// ModeMem is SQLiteMem: no journaling, no backing file, and one shared
	// page cache guarded by a global latch ("a shared page cache across
	// all threads, which further reduces overheads by eliminating extra
	// copies" — and serializes them under concurrency).
	ModeMem
)

// Options configures a DB.
type Options struct {
	Mode Mode
	// Path, when set (ModeReg only), stores the database at Path and the
	// log at Path+"-wal" on the real filesystem; otherwise both live in
	// memory files (the paper's /dev/shm placement).
	Path string
	// CachePages bounds each connection's private cache (ModeReg) —
	// SQLite's default is 2000 pages. Ignored by ModeMem (the shared
	// cache is the store itself).
	CachePages int
	// CheckpointBytes triggers a WAL checkpoint past this log size.
	CheckpointBytes int
	// SyncLatency models the cost of one fsync.
	SyncLatency time.Duration
}

func (o *Options) fill() {
	if o.CachePages <= 0 {
		o.CachePages = 2000
	}
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = 4 << 20
	}
}

const dbMagic = 0x53514C4B56303031 // "SQLKV001"

// header page (page 0) layout: magic(8) nPages(4) root(4) version(8) rowSeq(8)
type dbHeader struct {
	nPages  uint32
	root    uint32
	version uint64
	rowSeq  uint64
}

func (h dbHeader) encode() []byte {
	p := make([]byte, pageSize)
	binary.LittleEndian.PutUint64(p[0:], dbMagic)
	binary.LittleEndian.PutUint32(p[8:], h.nPages)
	binary.LittleEndian.PutUint32(p[12:], h.root)
	binary.LittleEndian.PutUint64(p[16:], h.version)
	binary.LittleEndian.PutUint64(p[24:], h.rowSeq)
	return p
}

func decodeHeader(p []byte) (dbHeader, error) {
	if binary.LittleEndian.Uint64(p[0:]) != dbMagic {
		return dbHeader{}, errors.New("sqlkv: not a sqlkv database")
	}
	return dbHeader{
		nPages:  binary.LittleEndian.Uint32(p[8:]),
		root:    binary.LittleEndian.Uint32(p[12:]),
		version: binary.LittleEndian.Uint64(p[16:]),
		rowSeq:  binary.LittleEndian.Uint64(p[24:]),
	}, nil
}

// DB is an embedded relational store emulating the paper's SQLite
// baselines. It satisfies kv.Store (see store.go); finer-grained access
// goes through per-thread connections from Conn().
type DB struct {
	opts Options

	mu   sync.RWMutex // single writer, shared readers — SQLite's lock
	file backing      // database file (ModeReg)
	wal  *wal         // ModeReg only
	hdr  dbHeader     // mutated under mu (exclusive)

	shared *sharedCache // ModeMem only

	version atomic.Uint64 // current (unsealed) version
	change  atomic.Uint64 // bumped per commit; invalidates private caches
	pool    sync.Pool     // *Conn
}

// sharedCache is ModeMem's page store: one map, one latch, every access
// serialized — the contention the paper measures.
type sharedCache struct {
	mu    sync.Mutex
	pages map[uint32][]byte
}

// Open creates or opens a database.
func Open(opts Options) (*DB, error) {
	opts.fill()
	db := &DB{opts: opts}
	db.pool.New = func() any { return db.newConn() }
	if opts.Mode == ModeMem {
		db.shared = &sharedCache{pages: make(map[uint32][]byte)}
		db.bootstrap()
		return db, nil
	}
	var dbFile, walFile backing
	if opts.Path == "" {
		dbFile, walFile = newMemFile(), newMemFile()
	} else {
		var err error
		if dbFile, err = openOSFile(opts.Path); err != nil {
			return nil, err
		}
		if walFile, err = openOSFile(opts.Path + "-wal"); err != nil {
			dbFile.Close()
			return nil, err
		}
	}
	db.file = dbFile
	db.wal = newWAL(walFile, dbFile, opts.CheckpointBytes, opts.SyncLatency)
	size, err := dbFile.Size()
	if err != nil {
		return nil, err
	}
	if size == 0 {
		db.bootstrap()
		return db, nil
	}
	// Existing database: replay the log, then load the header.
	if err := db.wal.replay(); err != nil {
		return nil, err
	}
	hp, err := db.basePage(0)
	if err != nil {
		return nil, err
	}
	hdr, err := decodeHeader(hp)
	if err != nil {
		return nil, err
	}
	db.hdr = hdr
	db.version.Store(hdr.version)
	return db, nil
}

// bootstrap initializes page 0 (header) and page 1 (empty root leaf).
func (db *DB) bootstrap() {
	db.hdr = dbHeader{nPages: 2, root: 1}
	root := make([]byte, pageSize)
	initLeaf(root)
	if db.opts.Mode == ModeMem {
		db.shared.mu.Lock()
		db.shared.pages[0] = db.hdr.encode()
		db.shared.pages[1] = root
		db.shared.mu.Unlock()
		return
	}
	db.file.WriteAt(db.hdr.encode(), 0)
	db.file.WriteAt(root, pageSize)
	db.file.Sync()
}

// basePage reads a committed page image, bypassing connection caches:
// WAL frame first, then the database file (ModeReg), or the shared page
// map (ModeMem).
func (db *DB) basePage(id uint32) ([]byte, error) {
	if db.opts.Mode == ModeMem {
		db.shared.mu.Lock()
		p, ok := db.shared.pages[id]
		db.shared.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("sqlkv: page %d does not exist", id)
		}
		return p, nil
	}
	if p, ok := db.wal.lookup(id); ok {
		return p, nil
	}
	p := make([]byte, pageSize)
	if _, err := db.file.ReadAt(p, int64(id)*pageSize); err != nil {
		return nil, fmt.Errorf("sqlkv: read page %d: %w", id, err)
	}
	return p, nil
}

// ---- write transactions ----

// writeTx is a copy-on-write transaction. Exactly one exists at a time
// (db.mu held exclusively).
type writeTx struct {
	db    *DB
	hdr   dbHeader
	pages map[uint32][]byte
}

func (db *DB) beginTx() *writeTx {
	return &writeTx{db: db, hdr: db.hdr, pages: make(map[uint32][]byte, 8)}
}

// page implements pageReader over the transaction's view.
func (tx *writeTx) page(id uint32) ([]byte, error) {
	if p, ok := tx.pages[id]; ok {
		return p, nil
	}
	return tx.db.basePage(id)
}

// pageForWrite returns a mutable copy of the page, entering it into the
// write set.
func (tx *writeTx) pageForWrite(id uint32) ([]byte, error) {
	if p, ok := tx.pages[id]; ok {
		return p, nil
	}
	base, err := tx.db.basePage(id)
	if err != nil {
		return nil, err
	}
	p := make([]byte, pageSize)
	copy(p, base)
	tx.pages[id] = p
	return p, nil
}

// alloc appends a fresh page to the database.
func (tx *writeTx) alloc() (uint32, []byte, error) {
	id := tx.hdr.nPages
	tx.hdr.nPages++
	p := make([]byte, pageSize)
	tx.pages[id] = p
	return id, p, nil
}

// commit publishes the write set durably (WAL append + fsync in ModeReg;
// shared-map install in ModeMem) and invalidates reader caches.
func (tx *writeTx) commit() error {
	tx.hdr.version = tx.db.version.Load()
	tx.pages[0] = tx.hdr.encode()
	if tx.db.opts.Mode == ModeMem {
		tx.db.shared.mu.Lock()
		for id, p := range tx.pages {
			tx.db.shared.pages[id] = p
		}
		tx.db.shared.mu.Unlock()
	} else if err := tx.db.wal.commit(tx.pages); err != nil {
		return err
	}
	tx.db.hdr = tx.hdr
	tx.db.change.Add(1)
	return nil
}

// Close checkpoints the log into the database file and releases resources.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.opts.Mode == ModeMem {
		return nil
	}
	// Persist the latest header (covers Tag calls after the last write).
	db.hdr.version = db.version.Load()
	if err := db.wal.commit(map[uint32][]byte{0: db.hdr.encode()}); err != nil {
		return err
	}
	if err := db.wal.checkpoint(); err != nil {
		return err
	}
	if err := db.file.Sync(); err != nil {
		return err
	}
	if err := db.wal.file.Close(); err != nil {
		return err
	}
	return db.file.Close()
}
