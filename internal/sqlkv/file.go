// Package sqlkv implements the paper's SQLiteReg and SQLiteMem baselines:
// an embedded relational storage engine modeled on SQLite's architecture.
//
// Real SQLite is unavailable to a pure-stdlib Go module, so this package
// rebuilds the layers that make a database engine a database engine — and
// that the paper identifies as its overheads:
//
//   - a slotted-page pager over a backing file (a memory file models the
//     paper's /dev/shm placement; a real file is supported too),
//   - a clustered B+-tree on the composite index (key, version, rowid),
//     the paper's "multi-column indexing over both version number and key",
//   - a write-ahead log with commit records, fsync, checkpointing and
//     replay ("write-ahead logging, which allows performance improvements
//     under concurrency while maintaining ACID transactional properties"),
//   - prepared-statement-style typed operations (no SQL text parsing on the
//     hot path, matching the paper's use of precompiled statements),
//   - single-writer/multi-reader locking, with either per-connection page
//     caches (SQLiteReg) or one shared page cache guarded by a global latch
//     (SQLiteMem — whose cache contention is exactly what the paper blames
//     for SQLiteMem's degradation under concurrent readers).
//
// The collection is a table of (version, key, value) rows; removals are
// rows with a reserved marker value, and finds/extracts are index range
// scans — precisely the paper's schema for both SQLite baselines.
package sqlkv

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// backing abstracts the database and WAL files.
type backing interface {
	io.ReaderAt
	io.WriterAt
	Size() (int64, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// memFile is an in-memory backing file standing in for /dev/shm: reads and
// writes contend on one lock, like page faults on a shared tmpfs mapping.
type memFile struct {
	mu   sync.RWMutex
	data []byte
}

func newMemFile() *memFile { return &memFile{} }

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.data)) {
		if end > int64(cap(f.data)) {
			// Amortized growth: doubling avoids quadratic copying as the
			// WAL appends.
			newCap := int64(cap(f.data))*2 + pageSize
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.data)
			f.data = grown
		} else {
			f.data = f.data[:end]
		}
	}
	copy(f.data[off:], p)
	return len(p), nil
}

func (f *memFile) Size() (int64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data)), nil
}

func (f *memFile) Sync() error { return nil }

func (f *memFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < int64(len(f.data)) {
		f.data = f.data[:size]
	}
	return nil
}

func (f *memFile) Close() error { return nil }

// osFile adapts an *os.File to the backing interface.
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func openOSFile(path string) (backing, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sqlkv: open %s: %w", path, err)
	}
	return osFile{f}, nil
}
