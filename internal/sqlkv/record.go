package sqlkv

// SQLite-compatible record encoding. Real SQLite stores every row as a
// variable-length record: a header of varints (a header-length varint plus
// one serial-type varint per column) followed by big-endian column bodies
// whose width the serial type selects. Decoding this header on every row
// touch is a real, measured part of SQLite's per-row cost, so the baseline
// must pay it too — with the fixed-width records used previously, the
// engine scanned rows at memcpy speed, which no SQL engine achieves.
//
// Rows here are 4-column integer records: (key, version, rowid, value).

// putVarint appends a SQLite varint (big-endian base-128, 9 bytes max,
// where the 9th byte carries 8 bits) and returns the extended slice.
func putVarint(dst []byte, v uint64) []byte {
	if v <= 0x7f {
		return append(dst, byte(v))
	}
	if v > 0x00ffffffffffffff {
		// 9-byte form: 8 groups of 7 bits with the high bit set, then a
		// full trailing byte.
		var buf [9]byte
		buf[8] = byte(v)
		v >>= 8
		for i := 7; i >= 0; i-- {
			buf[i] = byte(v&0x7f) | 0x80
			v >>= 7
		}
		return append(dst, buf[:]...)
	}
	var buf [8]byte
	n := 8
	for v > 0 {
		n--
		buf[n] = byte(v&0x7f) | 0x80
		v >>= 7
	}
	buf[7] &^= 0x80
	return append(dst, buf[n:]...)
}

// getVarint decodes a SQLite varint, returning the value and its width.
func getVarint(p []byte) (uint64, int) {
	var v uint64
	for i := 0; i < 8; i++ {
		b := p[i]
		if b < 0x80 {
			return v<<7 | uint64(b), i + 1
		}
		v = v<<7 | uint64(b&0x7f)
	}
	return v<<8 | uint64(p[8]), 9
}

// Serial types for integers, exactly SQLite's: the type number selects the
// big-endian two's-complement body width.
//
//	1→1 byte, 2→2, 3→3, 4→4, 5→6, 6→8; 8→constant 0, 9→constant 1.
func serialTypeFor(u uint64) (typ uint64, width int) {
	x := int64(u)
	switch {
	case x == 0:
		return 8, 0
	case x == 1:
		return 9, 0
	case x >= -128 && x <= 127:
		return 1, 1
	case x >= -32768 && x <= 32767:
		return 2, 2
	case x >= -(1<<23) && x < 1<<23:
		return 3, 3
	case x >= -(1<<31) && x < 1<<31:
		return 4, 4
	case x >= -(1<<47) && x < 1<<47:
		return 5, 6
	default:
		return 6, 8
	}
}

func serialWidth(typ uint64) int {
	switch typ {
	case 1:
		return 1
	case 2:
		return 2
	case 3:
		return 3
	case 4:
		return 4
	case 5:
		return 6
	case 6:
		return 8
	default: // 8, 9
		return 0
	}
}

// encodeRecord appends the SQLite record for r and returns the slice.
func encodeRecord(dst []byte, r rec) []byte {
	cols := [4]uint64{r.key, r.ver, r.rowid, r.val}
	var types [4]uint64
	var widths [4]int
	for i, c := range cols {
		types[i], widths[i] = serialTypeFor(c)
	}
	// Header: header-length varint + 4 serial-type varints. All our
	// serial types encode as 1-byte varints, so the header is 5 bytes.
	hdrLen := 1
	for _, t := range types {
		_ = t
		hdrLen++
	}
	dst = putVarint(dst, uint64(hdrLen))
	for _, t := range types {
		dst = putVarint(dst, t)
	}
	for i, c := range cols {
		x := int64(c)
		for b := widths[i] - 1; b >= 0; b-- {
			dst = append(dst, byte(x>>(8*uint(b))))
		}
	}
	return dst
}

// decodeRecord parses a record into r and returns the bytes consumed.
func decodeRecord(p []byte) (rec, int) {
	hdrLen, n := getVarint(p)
	off := n
	var types [4]uint64
	for i := 0; i < 4; i++ {
		t, w := getVarint(p[off:])
		types[i] = t
		off += w
	}
	_ = hdrLen
	var cols [4]uint64
	body := int(hdrLen)
	for i := 0; i < 4; i++ {
		switch types[i] {
		case 8:
			cols[i] = 0
		case 9:
			cols[i] = 1
		default:
			w := serialWidth(types[i])
			// big-endian two's complement, sign-extended
			var x int64
			if p[body]&0x80 != 0 {
				x = -1
			}
			for b := 0; b < w; b++ {
				x = x<<8 | int64(p[body+b])
			}
			if w < 8 {
				shift := uint(64 - 8*w)
				x = x << shift >> shift
			}
			cols[i] = uint64(x)
			body += w
		}
	}
	return rec{key: cols[0], ver: cols[1], rowid: cols[2], val: cols[3]}, body
}

// decodeRecordKey parses only the index columns (key, version, rowid) — the
// comparison path of searches, like SQLite's sqlite3VdbeRecordCompare.
func decodeRecordKey(p []byte) rec {
	_, n := getVarint(p)
	off := n
	var types [4]uint64
	for i := 0; i < 4; i++ {
		t, w := getVarint(p[off:])
		types[i] = t
		off += w
	}
	hdrLen, _ := getVarint(p)
	body := int(hdrLen)
	var cols [3]uint64
	for i := 0; i < 3; i++ {
		switch types[i] {
		case 8:
			cols[i] = 0
		case 9:
			cols[i] = 1
		default:
			w := serialWidth(types[i])
			var x int64
			if p[body]&0x80 != 0 {
				x = -1
			}
			for b := 0; b < w; b++ {
				x = x<<8 | int64(p[body+b])
			}
			if w < 8 {
				shift := uint(64 - 8*w)
				x = x << shift >> shift
			}
			cols[i] = uint64(x)
			body += w
		}
	}
	return rec{key: cols[0], ver: cols[1], rowid: cols[2]}
}

// recordLen returns the encoded size of r without allocating.
func recordLen(r rec) int {
	n := 5 // header: length varint + 4 one-byte serial types
	for _, c := range [4]uint64{r.key, r.ver, r.rowid, r.val} {
		_, w := serialTypeFor(c)
		n += w
	}
	return n
}
