package sqlkv

import (
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	cases := []uint64{
		0, 1, 0x7f, 0x80, 300, 0x3fff, 0x4000, 1 << 20, 1 << 31,
		0x00ffffffffffffff, 0x0100000000000000, ^uint64(0),
	}
	for _, v := range cases {
		buf := putVarint(nil, v)
		got, n := getVarint(buf)
		if got != v || n != len(buf) {
			t.Fatalf("varint %d: decoded %d (width %d of %d)", v, got, n, len(buf))
		}
	}
	if err := quick.Check(func(v uint64) bool {
		buf := putVarint(nil, v)
		got, n := getVarint(buf)
		return got == v && n == len(buf) && len(buf) <= 9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintOrderingOfWidths(t *testing.T) {
	// SQLite varints: values <= 0x7f are 1 byte; width grows with value
	if len(putVarint(nil, 0x7f)) != 1 {
		t.Fatal("small varint not 1 byte")
	}
	if len(putVarint(nil, 0x80)) != 2 {
		t.Fatal("0x80 not 2 bytes")
	}
	if len(putVarint(nil, ^uint64(0))) != 9 {
		t.Fatal("max varint not 9 bytes")
	}
}

func TestSerialTypes(t *testing.T) {
	cases := []struct {
		v     uint64
		typ   uint64
		width int
	}{
		{0, 8, 0}, {1, 9, 0}, {2, 1, 1}, {127, 1, 1}, {128, 2, 2},
		{32767, 2, 2}, {32768, 3, 3}, {1 << 23, 4, 4}, {1 << 31, 5, 6},
		{1 << 47, 6, 8}, {^uint64(0), 1, 1}, // -1 fits one byte
	}
	for _, c := range cases {
		typ, w := serialTypeFor(c.v)
		if typ != c.typ || w != c.width {
			t.Fatalf("serialTypeFor(%#x) = (%d,%d), want (%d,%d)", c.v, typ, w, c.typ, c.width)
		}
		if serialWidth(typ) != w {
			t.Fatalf("serialWidth(%d) = %d, want %d", typ, serialWidth(typ), w)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	f := func(key, ver, rowid, val uint64) bool {
		r := rec{key: key, ver: ver, rowid: rowid, val: val}
		buf := encodeRecord(nil, r)
		if len(buf) != recordLen(r) {
			return false
		}
		got, n := decodeRecord(buf)
		if n != len(buf) {
			return false
		}
		k := decodeRecordKey(buf)
		return got == r && k.key == key && k.ver == ver && k.rowid == rowid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// fixed interesting cases: zero, one, marker, mixed widths
	for _, r := range []rec{
		{},
		{key: 1, ver: 1, rowid: 1, val: 1},
		{key: ^uint64(0), ver: 0, rowid: 1 << 40, val: ^uint64(0)},
		{key: 0x7f, ver: 0x80, rowid: 0x7fff, val: 0x8000},
	} {
		buf := encodeRecord(nil, r)
		got, _ := decodeRecord(buf)
		if got != r {
			t.Fatalf("roundtrip %+v -> %+v", r, got)
		}
	}
}

func TestRecordCompactness(t *testing.T) {
	// small values must encode small — the whole point of serial types
	small := recordLen(rec{key: 1, ver: 2, rowid: 3, val: 4})
	if small > 10 {
		t.Fatalf("small record is %d bytes", small)
	}
	big := recordLen(rec{key: 1 << 60, ver: 1 << 60, rowid: 1 << 60, val: 1 << 60})
	if big < 5+32 {
		t.Fatalf("big record is %d bytes", big)
	}
}

// TestVDBEFindProgram exercises the compiled find statement against known
// rows, including the marker and multi-version cases.
func TestVDBEPrograms(t *testing.T) {
	db, err := Open(Options{Mode: ModeMem})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Insert(10, 100)
	db.Tag()
	db.Insert(10, 110)
	db.Insert(20, 200)
	db.Tag()
	db.Remove(20)
	db.Tag()

	c := db.Conn()
	defer db.Release(c)

	if v, ok, _ := c.Find(10, 0); !ok || v != 100 {
		t.Fatalf("find v0: %d,%v", v, ok)
	}
	if v, ok, _ := c.Find(10, 2); !ok || v != 110 {
		t.Fatalf("find v2: %d,%v", v, ok)
	}
	if _, ok, _ := c.Find(20, 2); ok {
		t.Fatal("removed key found")
	}
	if _, ok, _ := c.Find(99, 5); ok {
		t.Fatal("absent key found")
	}
	h, _ := c.History(20)
	if len(h) != 2 || h[0].Value != 200 || !h[1].Removed() {
		t.Fatalf("history: %v", h)
	}
	snap, _ := c.Snapshot(1)
	if len(snap) != 2 || snap[0].Key != 10 || snap[0].Value != 110 || snap[1].Key != 20 {
		t.Fatalf("snapshot v1: %v", snap)
	}
	rng, _ := c.Range(15, 25, 1)
	if len(rng) != 1 || rng[0].Key != 20 {
		t.Fatalf("range: %v", rng)
	}
}

// TestLeafSlottedLayout drives splits with maximally mixed record sizes.
func TestLeafSlottedMixedSizes(t *testing.T) {
	db, err := Open(Options{Mode: ModeMem})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// alternate tiny and huge column values so cells vary from ~9 to ~37B
	const n = 20000
	for i := uint64(0); i < n; i++ {
		k := i
		if i%2 == 1 {
			k = i << 45 // forces 8-byte key bodies
		}
		if err := db.Insert(k, i); err != nil {
			t.Fatal(err)
		}
	}
	v := db.Tag()
	snap := db.ExtractSnapshot(v)
	if len(snap) != n {
		t.Fatalf("snapshot has %d keys, want %d", len(snap), n)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Key >= snap[i].Key {
			t.Fatal("unsorted after mixed-size splits")
		}
	}
}
