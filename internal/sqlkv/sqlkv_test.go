package sqlkv

import (
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"mvkv/internal/kv"
	"mvkv/internal/mt19937"
	"mvkv/internal/storetest"
)

func TestConformanceReg(t *testing.T) {
	storetest.Run(t, func(t *testing.T) kv.Store {
		db, err := Open(Options{Mode: ModeReg})
		if err != nil {
			t.Fatal(err)
		}
		return db
	})
}

func TestConformanceMem(t *testing.T) {
	storetest.Run(t, func(t *testing.T) kv.Store {
		db, err := Open(Options{Mode: ModeMem})
		if err != nil {
			t.Fatal(err)
		}
		return db
	})
}

// TestBtreeManyRowsOrdered drives enough rows through the tree to force
// multiple levels of splits, then verifies full-scan ordering.
func TestBtreeManyRowsOrdered(t *testing.T) {
	db, err := Open(Options{Mode: ModeReg, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := mt19937.New(1)
	const n = 50000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		if err := db.Insert(keys[i], keys[i]^0xFF); err != nil {
			t.Fatal(err)
		}
	}
	v := db.Tag()
	snap := db.ExtractSnapshot(v)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	uniq := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			uniq = append(uniq, k)
		}
	}
	if len(snap) != len(uniq) {
		t.Fatalf("snapshot has %d keys, want %d", len(snap), len(uniq))
	}
	for i, p := range snap {
		if p.Key != uniq[i] || p.Value != uniq[i]^0xFF {
			t.Fatalf("pair %d = %+v", i, p)
		}
	}
	// point lookups across the whole tree
	for i := 0; i < 1000; i++ {
		k := uniq[int(rng.Uint64n(uint64(len(uniq))))]
		if got, ok := db.Find(k, v); !ok || got != k^0xFF {
			t.Fatalf("Find(%d) = %d,%v", k, got, ok)
		}
	}
}

// TestWALCheckpointCycle forces checkpoints and verifies nothing is lost.
func TestWALCheckpointCycle(t *testing.T) {
	db, err := Open(Options{Mode: ModeReg, CheckpointBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 5000 // ~160KB of rows => multiple checkpoints
	for i := uint64(0); i < n; i++ {
		if err := db.Insert(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	v := db.Tag()
	for i := uint64(0); i < n; i += 97 {
		if got, ok := db.Find(i, v); !ok || got != i*3 {
			t.Fatalf("Find(%d) = %d,%v", i, got, ok)
		}
	}
}

// TestRestartFromDisk is the paper's Figure 5b premise: SQLiteReg "persists
// both the table and indices after shutdown, therefore it has all required
// information readily available on restart".
func TestRestartFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.db")
	db, err := Open(Options{Mode: ModeReg, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := uint64(0); i < n; i++ {
		if err := db.Insert(i, i+100); err != nil {
			t.Fatal(err)
		}
		db.Tag()
	}
	wantVer := db.CurrentVersion()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Mode: ModeReg, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.CurrentVersion() != wantVer {
		t.Fatalf("version after restart = %d, want %d", db2.CurrentVersion(), wantVer)
	}
	v := db2.CurrentVersion()
	for i := uint64(0); i < n; i += 37 {
		if got, ok := db2.Find(i, v); !ok || got != i+100 {
			t.Fatalf("Find(%d) after restart = %d,%v", i, got, ok)
		}
	}
	if got := db2.Len(); got != n {
		t.Fatalf("Len after restart = %d", got)
	}
	// and it stays writable
	if err := db2.Insert(999999, 1); err != nil {
		t.Fatal(err)
	}
}

// TestWALReplayAfterUncleanStop: reopen without Close (no checkpoint); the
// WAL must replay committed transactions and drop a torn tail.
func TestWALReplayAfterUncleanStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.db")
	db, err := Open(Options{Mode: ModeReg, Path: path, CheckpointBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if err := db.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a torn tail: append garbage to the WAL file, then abandon
	// the DB without Close.
	db.wal.file.WriteAt([]byte{1, 2, 3, 4, 5}, db.wal.size)

	db2, err := Open(Options{Mode: ModeReg, Path: path, CheckpointBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v := db2.Tag()
	for i := uint64(0); i < 500; i += 13 {
		if got, ok := db2.Find(i, v); !ok || got != i {
			t.Fatalf("Find(%d) after replay = %d,%v", i, got, ok)
		}
	}
}

// TestQuickAgainstModel: random small workloads against a naive model,
// both modes.
func TestQuickAgainstModel(t *testing.T) {
	for _, mode := range []Mode{ModeReg, ModeMem} {
		f := func(ops []uint16) bool {
			db, err := Open(Options{Mode: mode})
			if err != nil {
				return false
			}
			defer db.Close()
			model := map[uint64]uint64{}
			for i, op := range ops {
				k := uint64(op % 32)
				switch op % 4 {
				case 0, 1:
					db.Insert(k, uint64(i)+1)
					model[k] = uint64(i) + 1
				case 2:
					db.Remove(k)
					delete(model, k)
				case 3:
					db.Tag()
				}
			}
			v := db.Tag()
			snap := db.ExtractSnapshot(v)
			if len(snap) != len(model) {
				return false
			}
			for _, p := range snap {
				if model[p.Key] != p.Value {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
	}
}

// TestTinyCacheStillCorrect: a pathological 4-page cache forces constant
// eviction; results must not change.
func TestTinyCacheStillCorrect(t *testing.T) {
	db, err := Open(Options{Mode: ModeReg, CachePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := uint64(0); i < 3000; i++ {
		if err := db.Insert(i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	v := db.Tag()
	for i := uint64(0); i < 3000; i += 61 {
		if got, ok := db.Find(i, v); !ok || got != i*2 {
			t.Fatalf("Find(%d) = %d,%v", i, got, ok)
		}
	}
}

// TestConnCacheInvalidation: a connection's private cache must refresh
// after another connection commits (the change-counter protocol).
func TestConnCacheInvalidation(t *testing.T) {
	db, err := Open(Options{Mode: ModeReg})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	reader := db.Conn()
	defer db.Release(reader)
	db.Insert(1, 10)
	v0 := db.Tag()
	if got, ok, _ := reader.Find(1, v0); !ok || got != 10 {
		t.Fatalf("first read: %d,%v", got, ok)
	}
	// write through the store path (separate pooled conn is irrelevant:
	// writes go through the engine)
	db.Insert(1, 20)
	v1 := db.Tag()
	if got, ok, _ := reader.Find(1, v1); !ok || got != 20 {
		t.Fatalf("stale read after commit: %d,%v", got, ok)
	}
	if got, ok, _ := reader.Find(1, v0); !ok || got != 10 {
		t.Fatalf("time-travel read broken after invalidation: %d,%v", got, ok)
	}
}

// TestRangeStatement covers the bounded index scan directly.
func TestRangeStatement(t *testing.T) {
	db, err := Open(Options{Mode: ModeMem})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 1000; k += 10 {
		db.Insert(k, k*2)
	}
	v := db.Tag()
	got := db.ExtractRange(95, 141, v)
	want := []uint64{100, 110, 120, 130, 140}
	if len(got) != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i, k := range want {
		if got[i].Key != k || got[i].Value != k*2 {
			t.Fatalf("range[%d] = %+v", i, got[i])
		}
	}
	if len(db.ExtractRange(5, 5, v)) != 0 {
		t.Fatal("empty interval returned pairs")
	}
}

// TestConcurrentReadersScaleSafely: many goroutines read through pooled
// connections while a writer commits; every read must be consistent.
func TestConcurrentReadersWithWriter(t *testing.T) {
	db, err := Open(Options{Mode: ModeReg})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 500; k++ {
		db.Insert(k, k)
	}
	db.Tag()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < 300; i++ {
			db.Insert(i%500, 1000+i)
			db.Tag()
		}
	}()
	rng := mt19937.New(5)
	for {
		select {
		case <-done:
			return
		default:
		}
		k := rng.Uint64n(500)
		if v, ok := db.Find(k, 0); ok && v != k {
			t.Fatalf("snapshot 0 changed: key %d = %d", k, v)
		}
	}
}

func BenchmarkInsertReg(b *testing.B) {
	db, _ := Open(Options{Mode: ModeReg})
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Insert(uint64(i), uint64(i))
	}
}

func BenchmarkFindReg(b *testing.B) {
	db, _ := Open(Options{Mode: ModeReg})
	defer db.Close()
	const n = 100000
	for i := uint64(0); i < n; i++ {
		db.Insert(i, i)
	}
	v := db.Tag()
	rng := mt19937.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Find(rng.Uint64n(n), v)
	}
}
