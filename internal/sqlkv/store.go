package sqlkv

import (
	"mvkv/internal/kv"
)

// kv.Store facade. Write statements run as auto-commit transactions under
// the writer lock; read statements borrow a pooled connection, which gives
// each goroutine its own page cache in ModeReg (the paper runs one SQLite
// connection per thread).

// Insert executes the prepared insert statement ("INSERT INTO t VALUES
// (version, key, value)") as one committed transaction.
func (db *DB) Insert(key, value uint64) error {
	if value == kv.Marker {
		return errMarker
	}
	return db.write(key, value)
}

// Remove inserts a removal-marker row.
func (db *DB) Remove(key uint64) error {
	return db.write(key, kv.Marker)
}

var errMarker = errorString("sqlkv: value is the reserved removal marker")

type errorString string

func (e errorString) Error() string { return string(e) }

func (db *DB) write(key, value uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	tx := db.beginTx()
	r := rec{key: key, ver: db.version.Load(), rowid: tx.hdr.rowSeq, val: value}
	tx.hdr.rowSeq++
	root, err := tx.insertRoot(tx.hdr.root, r)
	if err != nil {
		return err
	}
	tx.hdr.root = root
	return tx.commit()
}

// Find implements kv.Store.
func (db *DB) Find(key, version uint64) (uint64, bool) {
	c := db.Conn()
	defer db.Release(c)
	v, ok, err := c.Find(key, version)
	if err != nil {
		return 0, false
	}
	return v, ok
}

// Tag implements kv.Store: seals the current version. Durability of the
// version counter rides on the next committed write (and on Close), as a
// tag by itself changes no table rows.
func (db *DB) Tag() uint64 { return db.version.Add(1) - 1 }

// CurrentVersion implements kv.Store.
func (db *DB) CurrentVersion() uint64 { return db.version.Load() }

// ExtractSnapshot implements kv.Store.
func (db *DB) ExtractSnapshot(version uint64) []kv.KV {
	c := db.Conn()
	defer db.Release(c)
	out, err := c.Snapshot(version)
	if err != nil {
		return nil
	}
	return out
}

// ExtractRange implements kv.Store.
func (db *DB) ExtractRange(lo, hi, version uint64) []kv.KV {
	c := db.Conn()
	defer db.Release(c)
	out, err := c.Range(lo, hi, version)
	if err != nil {
		return nil
	}
	return out
}

// ExtractHistory implements kv.Store.
func (db *DB) ExtractHistory(key uint64) []kv.Event {
	c := db.Conn()
	defer db.Release(c)
	out, err := c.History(key)
	if err != nil {
		return nil
	}
	return out
}

// Len implements kv.Store (a full scan; the API is not on any hot path).
func (db *DB) Len() int {
	c := db.Conn()
	defer db.Release(c)
	n, err := c.DistinctKeys()
	if err != nil {
		return 0
	}
	return n
}

var _ kv.Store = (*DB)(nil)
