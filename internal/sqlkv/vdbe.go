package sqlkv

import "fmt"

// A miniature VDBE: SQLite executes every statement as a program of
// bytecode instructions interpreted by a dispatch loop (the "virtual
// database engine"), and that per-row dispatch is an inherent part of a SQL
// engine's cost. The prepared statements of this baseline compile to small
// programs over the same opcode vocabulary and run through the same kind of
// loop, so the engine pays — honestly, not through injected sleeps — the
// interpretive overhead the paper's SQLite measurements include.
//
// Register conventions: programs address a small register file; arguments
// are loaded into low registers by the caller.

type op uint8

const (
	opSeekGE    op = iota // seek cursor to first row >= (r[a], r[b], r[c]); jump p on empty
	opRewind              // seek to the first row; jump p on empty
	opColumn              // r[a] = column b of the current row (0=key 1=version 2=rowid 3=value)
	opNe                  // if r[a] != r[b] jump p
	opGt                  // if r[a] > r[b] jump p
	opGe                  // if r[a] >= r[b] jump p
	opInteger             // r[a] = imm
	opMove                // r[a] = r[b]
	opResultRow           // emit registers r[a .. a+b)
	opNext                // advance cursor; jump p while rows remain
	opHalt
)

type instr struct {
	op      op
	a, b, c int
	p       int    // jump target
	imm     uint64 // opInteger payload
}

// program is a compiled prepared statement.
type program struct {
	code []instr
	nreg int
}

// exec runs a program against the connection's cursor layer. args are
// loaded into registers 0..len(args)-1. emit receives each ResultRow; a
// false return halts execution (LIMIT-style abort).
func (c *Conn) exec(prog *program, args []uint64, emit func(row []uint64) bool) error {
	regs := make([]uint64, prog.nreg)
	copy(regs, args)
	var cur *cursor
	root := c.db.hdr.root
	pc := 0
	for {
		in := &prog.code[pc]
		switch in.op {
		case opSeekGE:
			var err error
			cur, err = seek(c, root, rec{key: regs[in.a], ver: regs[in.b], rowid: regs[in.c]})
			if err != nil {
				return err
			}
			if !cur.valid() {
				pc = in.p
				continue
			}
		case opRewind:
			var err error
			cur, err = seek(c, root, rec{})
			if err != nil {
				return err
			}
			if !cur.valid() {
				pc = in.p
				continue
			}
		case opColumn:
			r := cur.rec()
			switch in.b {
			case 0:
				regs[in.a] = r.key
			case 1:
				regs[in.a] = r.ver
			case 2:
				regs[in.a] = r.rowid
			case 3:
				regs[in.a] = r.val
			default:
				return fmt.Errorf("sqlkv: bad column %d", in.b)
			}
		case opNe:
			if regs[in.a] != regs[in.b] {
				pc = in.p
				continue
			}
		case opGt:
			if regs[in.a] > regs[in.b] {
				pc = in.p
				continue
			}
		case opGe:
			if regs[in.a] >= regs[in.b] {
				pc = in.p
				continue
			}
		case opInteger:
			regs[in.a] = in.imm
		case opMove:
			regs[in.a] = regs[in.b]
		case opResultRow:
			if !emit(regs[in.a : in.a+in.b]) {
				return nil
			}
		case opNext:
			if err := cur.next(); err != nil {
				return err
			}
			if cur.valid() {
				pc = in.p
				continue
			}
		case opHalt:
			return nil
		default:
			return fmt.Errorf("sqlkv: bad opcode %d", in.op)
		}
		pc++
	}
}

// Compiled statements. Registers:
//
//	findProg:    r0=key arg, r1=version arg; r2..r5 scratch;
//	             emits (found, value) once.
//	historyProg: r0=key arg; emits (version, value) per matching row.
//	scanProg:    r0=lo, r1=hi, r2=version; emits (key, version, value) for
//	             rows with lo <= key < hi and row.version <= version.
var (
	findProg = &program{
		nreg: 7,
		code: []instr{
			0:  {op: opInteger, a: 2, imm: 0},           // found = 0
			1:  {op: opInteger, a: 5, imm: 0},           // zero for seek
			2:  {op: opSeekGE, a: 0, b: 5, c: 5, p: 10}, // first row >= (key,0,0)
			3:  {op: opColumn, a: 4, b: 0},              // r4 = row.key
			4:  {op: opNe, a: 4, b: 0, p: 10},           // other key -> done
			5:  {op: opColumn, a: 4, b: 1},              // r4 = row.version
			6:  {op: opGt, a: 4, b: 1, p: 10},           // version > v -> done
			7:  {op: opColumn, a: 3, b: 3},              // r3 = row.value
			8:  {op: opInteger, a: 2, imm: 1},           // found = 1
			9:  {op: opNext, p: 3},                      // more rows of this key?
			10: {op: opResultRow, a: 2, b: 2},           // emit (found, value)
			11: {op: opHalt},
		},
	}
	historyProg = &program{
		nreg: 5,
		code: []instr{
			0: {op: opInteger, a: 4, imm: 0},
			1: {op: opSeekGE, a: 0, b: 4, c: 4, p: 8},
			2: {op: opColumn, a: 1, b: 0},
			3: {op: opNe, a: 1, b: 0, p: 8},
			4: {op: opColumn, a: 2, b: 1}, // version
			5: {op: opColumn, a: 3, b: 3}, // value
			6: {op: opResultRow, a: 2, b: 2},
			7: {op: opNext, p: 2},
			8: {op: opHalt},
		},
	}
	// snapshotProg is scanProg without the upper bound (full table scan):
	// r0=version arg; emits (key, version, value) for rows with
	// row.version <= version.
	snapshotProg = &program{
		nreg: 6,
		code: []instr{
			0: {op: opRewind, p: 8},
			1: {op: opColumn, a: 2, b: 0}, // key
			2: {op: opColumn, a: 3, b: 1}, // version
			3: {op: opGt, a: 3, b: 0, p: 6},
			4: {op: opColumn, a: 4, b: 3}, // value
			5: {op: opResultRow, a: 2, b: 3},
			6: {op: opNext, p: 1},
			7: {op: opHalt}, // unreachable guard
			8: {op: opHalt},
		},
	}
	scanProg = &program{
		nreg: 8,
		code: []instr{
			0:  {op: opInteger, a: 6, imm: 0},
			1:  {op: opSeekGE, a: 0, b: 6, c: 6, p: 10}, // first row with key >= lo
			2:  {op: opColumn, a: 3, b: 0},              // r3 = row.key
			3:  {op: opGe, a: 3, b: 1, p: 10},           // key >= hi -> done
			4:  {op: opColumn, a: 4, b: 1},              // r4 = row.version
			5:  {op: opGt, a: 4, b: 2, p: 8},            // row.version > v -> skip
			6:  {op: opColumn, a: 5, b: 3},              // r5 = row.value
			7:  {op: opResultRow, a: 3, b: 3},           // emit (key, version, value)
			8:  {op: opNext, p: 2},
			9:  {op: opHalt}, // unreachable guard
			10: {op: opHalt},
		},
	}
)
