package sqlkv

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// wal is the write-ahead log. Committing writers append page frames plus a
// commit record and sync; readers consult the in-memory frame index (the
// "wal-index" of SQLite) before falling back to the database file. When the
// log grows past the checkpoint threshold, committed frames are folded back
// into the database file and the log is truncated.
//
// Frame format on the log file: pageID(4) len(4) data(len). A commit record
// is pageID == commitSentinel with len == frame count of the transaction.
type wal struct {
	syncLatency time.Duration
	threshold   int // checkpoint when log bytes exceed this

	mu     sync.RWMutex
	file   backing
	db     backing
	frames map[uint32][]byte // latest committed image per page
	size   int64             // log file length
	synced int64             // prefix of the log known durable
}

const commitSentinel = ^uint32(0)

func newWAL(logFile, dbFile backing, threshold int, syncLatency time.Duration) *wal {
	if threshold <= 0 {
		threshold = 4 << 20
	}
	return &wal{
		syncLatency: syncLatency,
		threshold:   threshold,
		file:        logFile,
		db:          dbFile,
		frames:      make(map[uint32][]byte),
	}
}

// lookup returns the committed WAL image of a page, if any.
func (w *wal) lookup(id uint32) ([]byte, bool) {
	w.mu.RLock()
	p, ok := w.frames[id]
	w.mu.RUnlock()
	return p, ok
}

// commit durably appends one transaction's dirty pages and publishes them
// to the frame index. Called with the database writer lock held (single
// writer), so internal locking only guards against concurrent readers.
func (w *wal) commit(pages map[uint32][]byte) error {
	// Build the log record outside the lock.
	var buf []byte
	var hdr [8]byte
	ids := make([]uint32, 0, len(pages))
	for id, data := range pages {
		binary.LittleEndian.PutUint32(hdr[0:], id)
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(data)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, data...)
		ids = append(ids, id)
	}
	binary.LittleEndian.PutUint32(hdr[0:], commitSentinel)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(pages)))
	buf = append(buf, hdr[:]...)

	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.file.WriteAt(buf, w.size); err != nil {
		return fmt.Errorf("sqlkv: wal append: %w", err)
	}
	w.size += int64(len(buf))
	if err := w.file.Sync(); err != nil {
		return err
	}
	fsyncCost(w.syncLatency)
	w.synced = w.size
	for _, id := range ids {
		img := make([]byte, len(pages[id]))
		copy(img, pages[id])
		w.frames[id] = img
	}
	if w.size > int64(w.threshold) {
		return w.checkpointLocked()
	}
	return nil
}

// checkpointLocked folds every committed frame into the database file and
// resets the log. Caller holds w.mu exclusively.
func (w *wal) checkpointLocked() error {
	for id, data := range w.frames {
		if _, err := w.db.WriteAt(data, int64(id)*pageSize); err != nil {
			return fmt.Errorf("sqlkv: checkpoint page %d: %w", id, err)
		}
	}
	if err := w.db.Sync(); err != nil {
		return err
	}
	fsyncCost(w.syncLatency)
	w.frames = make(map[uint32][]byte)
	if err := w.file.Truncate(0); err != nil {
		return err
	}
	w.size, w.synced = 0, 0
	return nil
}

// checkpoint is the exported (locking) form, used at close.
func (w *wal) checkpoint() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.checkpointLocked()
}

// replay scans the log file after a restart and republishes every frame of
// every committed transaction; uncommitted tails are discarded, preserving
// transaction atomicity.
func (w *wal) replay() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	size, err := w.file.Size()
	if err != nil {
		return err
	}
	var off int64
	pending := make(map[uint32][]byte)
	hdr := make([]byte, 8)
	for off+8 <= size {
		if _, err := w.file.ReadAt(hdr, off); err != nil {
			break
		}
		id := binary.LittleEndian.Uint32(hdr[0:])
		n := binary.LittleEndian.Uint32(hdr[4:])
		off += 8
		if id == commitSentinel {
			for pid, data := range pending {
				w.frames[pid] = data
			}
			pending = make(map[uint32][]byte)
			w.size = off
			continue
		}
		if off+int64(n) > size {
			break // torn frame
		}
		data := make([]byte, n)
		if _, err := w.file.ReadAt(data, off); err != nil {
			break
		}
		off += int64(n)
		pending[id] = data
	}
	// Drop any torn tail from the log.
	w.synced = w.size
	return w.file.Truncate(w.size)
}

// fsyncCost models the durability latency of an fsync (on the paper's
// /dev/shm it is small but not free).
func fsyncCost(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
