package storetest

import (
	"testing"

	"mvkv/internal/kv"
	"mvkv/internal/mt19937"
)

// Batch conformance: every store — local, over TCP, or as a cluster — must
// give batched operations the exact semantics of the equivalent single-op
// loop. The tests drive the store through the kv.InsertBatch/kv.FindBatch
// helpers, so stores with a native bulk path exercise it and the rest
// exercise the generic fallback.

func testBatchBasics(t *testing.T, mk Factory) {
	s := open(t, mk)
	// Empty batches are no-ops.
	must(t, kv.InsertBatch(s, nil))
	must(t, kv.InsertBatch(s, []kv.KV{}))
	if vals, found := kv.FindBatch(s, nil, nil); len(vals) != 0 || len(found) != 0 {
		t.Fatalf("empty FindBatch returned %d values, %d flags", len(vals), len(found))
	}
	if s.Len() != 0 {
		t.Fatalf("Len after empty batches = %d", s.Len())
	}
	// A 1-element batch behaves like Insert.
	must(t, kv.InsertBatch(s, []kv.KV{{Key: 7, Value: 70}}))
	v0 := s.Tag()
	if v, ok := s.Find(7, v0); !ok || v != 70 {
		t.Fatalf("Find after 1-element batch = %d,%v", v, ok)
	}
	if vals, found := kv.FindBatch(s, []uint64{7, 8}, []uint64{v0, v0}); !found[0] || vals[0] != 70 || found[1] {
		t.Fatalf("FindBatch = %v,%v", vals, found)
	}
	// Same-key pairs in one batch keep their order: the last one wins at
	// the batch's version, and the history records both.
	must(t, kv.InsertBatch(s, []kv.KV{{Key: 9, Value: 1}, {Key: 9, Value: 2}, {Key: 9, Value: 3}}))
	v1 := s.Tag()
	if v, ok := s.Find(9, v1); !ok || v != 3 {
		t.Fatalf("last write of same-key run should win: %d,%v", v, ok)
	}
	// The marker value is rejected in a batch just as in Insert.
	if err := kv.InsertBatch(s, []kv.KV{{Key: 8, Value: 80}, {Key: 9, Value: kv.Marker}}); err == nil {
		t.Fatal("batch containing the marker value succeeded")
	}
}

// testBatchEquivalence checks random batches against a pure-Go model:
// after each batch the store is tagged, and every (key, version) probe must
// agree with the model — through Find and FindBatch alike.
func testBatchEquivalence(t *testing.T, mk Factory) {
	s := open(t, mk)
	rng := mt19937.New(20220614)
	const keySpace = 16
	cur := map[uint64]uint64{}
	var perVersion []map[uint64]uint64
	for round := 0; round < 8; round++ {
		n := int(rng.Uint64n(64)) // 0..63 pairs; some rounds are near-empty
		pairs := make([]kv.KV, n)
		for i := range pairs {
			pairs[i] = kv.KV{Key: rng.Uint64n(keySpace), Value: rng.Uint64n(1000) + 1}
		}
		must(t, kv.InsertBatch(s, pairs))
		for _, p := range pairs {
			cur[p.Key] = p.Value
		}
		snap := make(map[uint64]uint64, len(cur))
		for k, v := range cur {
			snap[k] = v
		}
		perVersion = append(perVersion, snap)
		if got := s.Tag(); got != uint64(round) {
			t.Fatalf("Tag after round %d = %d", round, got)
		}
	}
	var keys, versions []uint64
	for ver := range perVersion {
		for k := uint64(0); k < keySpace; k++ {
			keys = append(keys, k)
			versions = append(versions, uint64(ver))
		}
	}
	vals, found := kv.FindBatch(s, keys, versions)
	for i := range keys {
		wantV, wantOK := perVersion[versions[i]][keys[i]]
		if found[i] != wantOK || (wantOK && vals[i] != wantV) {
			t.Fatalf("FindBatch(key %d, version %d) = %d,%v; model says %d,%v",
				keys[i], versions[i], vals[i], found[i], wantV, wantOK)
		}
		if v, ok := s.Find(keys[i], versions[i]); ok != found[i] || v != vals[i] {
			t.Fatalf("Find(key %d, version %d) = %d,%v disagrees with FindBatch %d,%v",
				keys[i], versions[i], v, ok, vals[i], found[i])
		}
	}
}

// testBatchMixed interleaves batches with single inserts, removes, and
// tags, verifying the tagged snapshots against the model — batches must
// compose with the rest of the API, not just with themselves.
func testBatchMixed(t *testing.T, mk Factory) {
	s := open(t, mk)
	rng := mt19937.New(7)
	const keySpace = 12
	cur := map[uint64]uint64{}
	var perVersion []map[uint64]uint64
	for round := 0; round < 6; round++ {
		n := 1 + int(rng.Uint64n(32))
		pairs := make([]kv.KV, n)
		for i := range pairs {
			pairs[i] = kv.KV{Key: rng.Uint64n(keySpace), Value: rng.Uint64n(1000) + 1}
		}
		must(t, kv.InsertBatch(s, pairs))
		for _, p := range pairs {
			cur[p.Key] = p.Value
		}
		for j := 0; j < 4; j++ {
			k := rng.Uint64n(keySpace)
			if rng.Uint64n(3) == 0 {
				must(t, s.Remove(k))
				delete(cur, k)
			} else {
				v := rng.Uint64n(1000) + 1
				must(t, s.Insert(k, v))
				cur[k] = v
			}
		}
		snap := make(map[uint64]uint64, len(cur))
		for k, v := range cur {
			snap[k] = v
		}
		perVersion = append(perVersion, snap)
		s.Tag()
	}
	for ver, snap := range perVersion {
		var keys, versions []uint64
		for k := uint64(0); k < keySpace; k++ {
			keys = append(keys, k)
			versions = append(versions, uint64(ver))
		}
		vals, found := kv.FindBatch(s, keys, versions)
		for i, k := range keys {
			wantV, wantOK := snap[k]
			if found[i] != wantOK || (wantOK && vals[i] != wantV) {
				t.Fatalf("version %d key %d: FindBatch = %d,%v, model %d,%v",
					ver, k, vals[i], found[i], wantV, wantOK)
			}
		}
	}
}
