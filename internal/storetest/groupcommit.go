package storetest

import (
	"sync"
	"testing"
	"time"

	"mvkv/internal/kv"
)

// testUncoordinatedWriters hammers the store with many goroutines issuing
// SINGLE writes with no coordination between them — the workload a
// group-commit pipeline coalesces into shared runs — while a tagger seals
// versions and a batcher pushes a bulk insert into the same stream. The
// contract under test is that coalescing is invisible: every acknowledged
// write is visible afterwards, a writer's program order is preserved for
// its keys (the remove it issued before a re-insert must not win), and
// stores without a pipeline behave identically.
func testUncoordinatedWriters(t *testing.T, mk Factory) {
	s := open(t, mk)
	const (
		writers = 8
		perW    = 30
		batchLo = uint64(100000)
		batchN  = 16
	)
	errCh := make(chan error, writers+2)

	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perW; i++ {
				// Interleaved keys: neighbours in one coalesced run belong
				// to different writers.
				key := uint64(w + i*writers)
				if err := s.Insert(key, key*3+1); err != nil {
					errCh <- err
					return
				}
			}
			// Program-order churn on this writer's first key: the final
			// re-insert must win over the remove issued just before it,
			// whichever runs they land in.
			first := uint64(w)
			if err := s.Remove(first); err != nil {
				errCh <- err
				return
			}
			if err := s.Insert(first, 7777+first); err != nil {
				errCh <- err
			}
		}(w)
	}
	writerWg.Add(1)
	go func() { // a bulk insert rides the same write stream
		defer writerWg.Done()
		pairs := make([]kv.KV, batchN)
		for i := range pairs {
			pairs[i] = kv.KV{Key: batchLo + uint64(i), Value: uint64(i) + 1}
		}
		if err := kv.InsertBatch(s, pairs); err != nil {
			errCh <- err
		}
	}()
	stopTag := make(chan struct{})
	var tagWg sync.WaitGroup
	tagWg.Add(1)
	go func() { // versions advance concurrently with the writes
		defer tagWg.Done()
		for {
			select {
			case <-stopTag:
				return
			default:
				s.Tag()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	writerWg.Wait()
	close(stopTag)
	tagWg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	v := s.Tag()
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			key := uint64(w + i*writers)
			want := key*3 + 1
			if key == uint64(w) {
				want = 7777 + key // the churn overwrote the first key
			}
			got, ok := s.Find(key, v)
			if !ok || got != want {
				t.Fatalf("key %d at version %d: (%d, %v), want (%d, true)", key, v, got, ok, want)
			}
		}
	}
	for i := uint64(0); i < batchN; i++ {
		if got, ok := s.Find(batchLo+i, v); !ok || got != i+1 {
			t.Fatalf("batch key %d: (%d, %v), want (%d, true)", batchLo+i, got, ok, i+1)
		}
	}
	if got, want := s.Len(), writers*perW+batchN; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		evs := s.ExtractHistory(uint64(w))
		if len(evs) == 0 {
			t.Fatalf("writer %d's churned key has no history", w)
		}
		last := evs[len(evs)-1]
		if last.Removed() || last.Value != 7777+uint64(w) {
			t.Fatalf("writer %d's churned key ends at %+v; the re-insert after the remove must win", w, last)
		}
	}
}
