package storetest

import (
	"strings"
	"sync"
	"testing"

	"mvkv/internal/obs"
)

// obsStore is implemented by stores that expose an observability snapshot
// (core.Store, kvnet.Server-backed clients do not — the suite only runs
// this phase when the store itself carries metrics).
type obsStore interface {
	ObsSnapshot() obs.Snapshot
}

// testMetricsConformance checks that a store's op counters reconcile
// exactly with the operations the suite issues: whatever a store counts
// under ".ops.<name>" must move by precisely the number of <name> calls.
// A concurrent snapshot reader runs throughout so the race detector
// exercises snapshotting against a mutating store.
func testMetricsConformance(t *testing.T, mk Factory) {
	s := open(t, mk)
	os, ok := s.(obsStore)
	if !ok {
		t.Skip("store exposes no ObsSnapshot")
	}
	before := os.ObsSnapshot()

	// Hammer snapshots concurrently with the scripted workload: the value
	// under test is that ObsSnapshot is safe against mutation, not what
	// the mid-flight snapshots contain.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = os.ObsSnapshot()
			}
		}
	}()

	const inserts, removes, finds, tags = 64, 8, 32, 3
	for i := uint64(0); i < inserts; i++ {
		must(t, s.Insert(i, i*2))
	}
	for i := uint64(0); i < removes; i++ {
		must(t, s.Remove(i))
	}
	var v uint64
	for i := 0; i < tags; i++ {
		v = s.Tag()
	}
	for i := uint64(0); i < finds; i++ {
		s.Find(i, v)
	}
	close(stop)
	wg.Wait()

	delta := os.ObsSnapshot().Delta(before)
	want := map[string]uint64{
		"insert": inserts,
		"remove": removes,
		"find":   finds,
		"tag":    tags,
	}
	seen := 0
	for name, got := range delta.Counters {
		i := strings.Index(name, ".ops.")
		if i < 0 {
			continue
		}
		w, tracked := want[name[i+len(".ops."):]]
		if !tracked {
			continue
		}
		seen++
		if got != w {
			t.Errorf("%s moved by %d, want %d", name, got, w)
		}
	}
	if seen == 0 {
		t.Error("store exposes ObsSnapshot but no insert/remove/find/tag op counters")
	}

	// Concurrent phase: counting must stay exact under uncoordinated
	// writers — and a store with a group-commit pipeline must account for
	// every one of their pairs exactly once, however the dispatcher
	// happened to coalesce them.
	mid := os.ObsSnapshot()
	const cWriters, cPerW = 8, 24
	var cwg sync.WaitGroup
	cErrs := make(chan error, cWriters)
	for w := 0; w < cWriters; w++ {
		cwg.Add(1)
		go func(w int) {
			defer cwg.Done()
			for i := 0; i < cPerW; i++ {
				if err := s.Insert(uint64(10000+w*cPerW+i), uint64(i)); err != nil {
					cErrs <- err
					return
				}
			}
		}(w)
	}
	cwg.Wait()
	close(cErrs)
	for err := range cErrs {
		t.Fatal(err)
	}
	cDelta := os.ObsSnapshot().Delta(mid)
	const cTotal = cWriters * cPerW
	for name, got := range cDelta.Counters {
		if strings.HasSuffix(name, ".ops.insert") && got != cTotal {
			t.Errorf("%s moved by %d under concurrent writers, want %d", name, got, cTotal)
		}
	}
	if pairs, ok := cDelta.Counters["store.gc.pairs"]; ok {
		if pairs != cTotal {
			t.Errorf("group-commit pipeline carried %d pairs, want %d", pairs, cTotal)
		}
		runs := cDelta.Counters["store.gc.runs"]
		if runs == 0 || runs > cTotal {
			t.Errorf("group-commit pipeline flushed %d runs for %d pairs", runs, cTotal)
		}
		if persists := cDelta.Counters["store.gc.persists"]; persists == 0 {
			t.Error("group-commit pipeline recorded no persist fences for durable writes")
		}
	}
}
