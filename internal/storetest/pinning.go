package storetest

import (
	"testing"

	"mvkv/internal/kv"
)

// testSnapshotPinning exercises the snapshot-pinning + version-GC contract
// through the kv.Pinner / kv.Collector capability helpers, so it is
// meaningful for every store: stores with a GC must keep a pinned snapshot
// byte-exact through arbitrarily many passes; stores without one satisfy
// the contract trivially (the helpers fall back to plain Tag / no-op) and
// the assertions double as plain time-travel checks.
func testSnapshotPinning(t *testing.T, mk Factory) {
	s := open(t, mk)
	const keys = 32
	const rounds = 60

	// Baseline: every key gets a value, then the snapshot is pinned.
	for k := uint64(0); k < keys; k++ {
		must(t, s.Insert(k, 1000+k))
	}
	pinned := kv.AcquireTag(s)
	want := s.ExtractSnapshot(pinned)
	if len(want) != keys {
		t.Fatalf("pinned snapshot has %d pairs, want %d", len(want), keys)
	}

	// Hammer overwrites with GC passes interleaved: the pin must keep the
	// sealed snapshot exact no matter how much newer history churns above
	// (and below the current watermark, which the pin holds at the tag).
	for r := 0; r < rounds; r++ {
		for k := uint64(0); k < keys; k++ {
			must(t, s.Insert(k, uint64(2000+r)*keys+k))
		}
		s.Tag()
		if r%10 == 9 {
			if _, err := kv.GC(s); err != nil {
				t.Fatalf("GC during pinned phase: %v", err)
			}
		}
	}

	got := s.ExtractSnapshot(pinned)
	if len(got) != len(want) {
		t.Fatalf("pinned snapshot changed size: %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pinned snapshot drifted at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	for k := uint64(0); k < keys; k += 7 {
		v, ok := s.Find(k, pinned)
		if !ok || v != 1000+k {
			t.Fatalf("Find(%d, pinned %d) = %d,%v; want %d,true", k, pinned, v, ok, 1000+k)
		}
	}

	// Current reads must be exact regardless of GC.
	cur := s.CurrentVersion()
	for k := uint64(0); k < keys; k++ {
		wantV := uint64(2000+rounds-1)*keys + k
		if v, ok := s.Find(k, cur); !ok || v != wantV {
			t.Fatalf("Find(%d, current) = %d,%v; want %d,true", k, v, ok, wantV)
		}
	}

	// Release the pin; a GC pass may now reclaim the old history. Stores
	// that report a collector must actually reclaim under this much churn.
	must(t, kv.ReleaseTag(s, pinned))
	res, err := kv.GC(s)
	if err != nil {
		t.Fatalf("GC after release: %v", err)
	}
	if res.Supported && res.EntriesReclaimed == 0 {
		t.Fatalf("post-release GC reclaimed nothing after %d overwrite rounds: %+v", rounds, res)
	}

	// Double release of a reclaimable pin is an error (refcounted pins; the
	// tag no longer has one). Gated on the GC capability being live
	// end-to-end rather than on a static kv.Pinner check: a proxy store
	// (network client, cluster) always implements the interface but its
	// backing may have no pin table, in which case release is a no-op.
	if res.Supported {
		if err := kv.ReleaseTag(s, pinned); err == nil {
			t.Fatal("second ReleaseTag of the same tag succeeded")
		}
	}

	// Reclamation must not disturb what the live snapshot serves.
	for k := uint64(0); k < keys; k++ {
		wantV := uint64(2000+rounds-1)*keys + k
		if v, ok := s.Find(k, cur); !ok || v != wantV {
			t.Fatalf("post-GC Find(%d, current) = %d,%v; want %d,true", k, v, ok, wantV)
		}
	}
	if n := s.Len(); n != keys {
		t.Fatalf("Len = %d after GC, want %d (histories never disappear)", n, keys)
	}
}
