package storetest

import (
	"testing"

	"mvkv/internal/kv"
)

// RankCrashHarness is implemented by distributed test fixtures that can
// kill and resurrect individual ranks of a running cluster. storetest
// stays free of any dependency on the distribution layer: the harness owns
// the cluster mechanics, the suite owns the semantic assertions.
type RankCrashHarness interface {
	// Store is the cluster viewed as one kv.Store (driven from rank 0).
	Store() kv.Store
	// Size returns the number of ranks.
	Size() int
	// Owner returns the rank owning a key.
	Owner(key uint64) int
	// Crash kills rank (must not be 0), losing whatever its node had not
	// persisted.
	Crash(rank int)
	// Restart brings a crashed rank back: reopen its persistent state,
	// run local recovery, rejoin the cluster. It returns once the rank is
	// serving again.
	Restart(rank int) error
}

// RunRankCrash is the rank-crash conformance phase: build versioned state,
// kill a non-zero rank mid-workload, restart it on its persistent arena,
// and assert that every tag sealed before the crash extracts identically
// afterwards — on the merged cluster view and for the restarted rank's own
// keys. Degraded-mode behaviour (typed errors, timings) is asserted by the
// harness's own tests; this phase checks pure store semantics.
func RunRankCrash(t *testing.T, h RankCrashHarness) {
	s := h.Store()
	victim := 1 % h.Size()
	if victim == 0 {
		t.Skip("rank-crash phase needs at least 2 ranks")
	}

	// Phase 1: versioned state, fully sealed and confirmed before the
	// crash. Every version rewrites every key, so all ranks have entries
	// in all versions.
	const nKeys, nVersions = 120, 4
	sealed := make([][]kv.KV, nVersions)
	for v := 0; v < nVersions; v++ {
		for k := uint64(0); k < nKeys; k++ {
			if err := s.Insert(k, k*100+uint64(v)); err != nil {
				t.Fatalf("insert v%d k%d: %v", v, k, err)
			}
		}
		tag := s.Tag()
		if tag != uint64(v) {
			t.Fatalf("tag sealed %d, want %d", tag, v)
		}
		sealed[v] = s.ExtractSnapshot(tag)
		if len(sealed[v]) != nKeys {
			t.Fatalf("pre-crash snapshot %d has %d pairs", v, len(sealed[v]))
		}
	}

	// Phase 2: kill the victim, then keep working through the keys the
	// survivors own. Writes to the dead rank's keys must fail (not hang,
	// not silently vanish); the suite only requires an error here.
	h.Crash(victim)
	liveWrites := 0
	for k := uint64(0); k < nKeys; k++ {
		if h.Owner(k) == victim {
			if err := s.Insert(k, 99999); err == nil {
				t.Fatalf("insert to crashed rank %d succeeded", victim)
			}
			continue
		}
		if err := s.Insert(k, k*100+50); err != nil {
			t.Fatalf("insert to surviving rank during outage: %v", err)
		}
		liveWrites++
	}
	if liveWrites == 0 {
		t.Fatal("workload never touched a surviving rank")
	}
	// Reads of surviving partitions still answer during the outage.
	for k := uint64(0); k < nKeys; k++ {
		if h.Owner(k) == victim {
			continue
		}
		want := k*100 + uint64(nVersions-1)
		if got, ok := s.Find(k, uint64(nVersions-1)); !ok || got != want {
			t.Fatalf("degraded find k%d: got %d,%v want %d", k, got, ok, want)
		}
	}

	// Phase 3: restart and verify every pre-crash sealed tag extracts
	// identically. The outage writes above were never sealed; depending on
	// what the victim's crash preserved they may be rolled back by the
	// alignment — sealed tags are the durability contract.
	if err := h.Restart(victim); err != nil {
		t.Fatalf("restart rank %d: %v", victim, err)
	}
	for v := 0; v < nVersions; v++ {
		got := s.ExtractSnapshot(uint64(v))
		if len(got) != len(sealed[v]) {
			t.Fatalf("post-restart snapshot %d: %d pairs, want %d", v, len(got), len(sealed[v]))
		}
		for i := range got {
			if got[i] != sealed[v][i] {
				t.Fatalf("post-restart snapshot %d differs at %d: %+v != %+v",
					v, i, got[i], sealed[v][i])
			}
		}
	}
	// The restarted rank serves its own keys again, at every version.
	for k := uint64(0); k < nKeys; k++ {
		if h.Owner(k) != victim {
			continue
		}
		for v := 0; v < nVersions; v++ {
			want := k*100 + uint64(v)
			if got, ok := s.Find(k, uint64(v)); !ok || got != want {
				t.Fatalf("post-restart find k%d v%d: got %d,%v want %d", k, v, got, ok, want)
			}
		}
	}
	// And accepts new work that seals cleanly across the whole cluster.
	for k := uint64(0); k < nKeys; k++ {
		if err := s.Insert(k, k+7); err != nil {
			t.Fatalf("post-restart insert k%d: %v", k, err)
		}
	}
	after := s.Tag()
	if snap := s.ExtractSnapshot(after); len(snap) != nKeys {
		t.Fatalf("post-restart sealed snapshot: %d pairs, want %d", len(snap), nKeys)
	}
}
