// Package storetest provides a behavioural conformance suite for kv.Store
// implementations. All five of the paper's compared approaches run the same
// suite, guaranteeing they implement identical Table-1 semantics before the
// benchmarks compare their performance.
package storetest

import (
	"runtime"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"mvkv/internal/kv"
	"mvkv/internal/mt19937"
)

// Factory builds a fresh empty store for one test. The store is closed by
// the suite.
type Factory func(t *testing.T) kv.Store

// Run executes the full conformance suite against the factory.
func Run(t *testing.T, mk Factory) {
	t.Run("EmptyStore", func(t *testing.T) { testEmpty(t, mk) })
	t.Run("InsertFindTag", func(t *testing.T) { testInsertFindTag(t, mk) })
	t.Run("RemoveSemantics", func(t *testing.T) { testRemove(t, mk) })
	t.Run("MarkerRejected", func(t *testing.T) { testMarkerRejected(t, mk) })
	t.Run("SnapshotSorted", func(t *testing.T) { testSnapshotSorted(t, mk) })
	t.Run("SnapshotTimeTravel", func(t *testing.T) { testSnapshotTimeTravel(t, mk) })
	t.Run("History", func(t *testing.T) { testHistory(t, mk) })
	t.Run("ExtractRange", func(t *testing.T) { testExtractRange(t, mk) })
	t.Run("RangeStitch", func(t *testing.T) { testRangeStitch(t, mk) })
	t.Run("SnapshotStream", func(t *testing.T) { testSnapshotStream(t, mk) })
	t.Run("QuickModel", func(t *testing.T) { testQuickModel(t, mk) })
	t.Run("BatchBasics", func(t *testing.T) { testBatchBasics(t, mk) })
	t.Run("BatchEquivalence", func(t *testing.T) { testBatchEquivalence(t, mk) })
	t.Run("BatchMixed", func(t *testing.T) { testBatchMixed(t, mk) })
	t.Run("ConcurrentDistinctKeys", func(t *testing.T) { testConcurrentDistinct(t, mk) })
	t.Run("ConcurrentMixed", func(t *testing.T) { testConcurrentMixed(t, mk) })
	t.Run("ConcurrentReaders", func(t *testing.T) { testConcurrentReaders(t, mk) })
	t.Run("UncoordinatedWriters", func(t *testing.T) { testUncoordinatedWriters(t, mk) })
	t.Run("SnapshotPinning", func(t *testing.T) { testSnapshotPinning(t, mk) })
	t.Run("Transactions", func(t *testing.T) { testTransactions(t, mk) })
	t.Run("MetricsConformance", func(t *testing.T) { testMetricsConformance(t, mk) })
}

// must fails the test on a mutation error. The semantic tests route every
// Insert/Remove through it: a store whose writes silently fail (e.g. a
// remote store over a broken transport) must fail loudly here, not produce
// vacuous passes on an empty store.
func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func open(t *testing.T, mk Factory) kv.Store {
	t.Helper()
	s := mk(t)
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func testEmpty(t *testing.T, mk Factory) {
	s := open(t, mk)
	if _, ok := s.Find(1, 0); ok {
		t.Fatal("Find on empty store returned ok")
	}
	if got := s.ExtractSnapshot(0); len(got) != 0 {
		t.Fatalf("empty snapshot has %d pairs", len(got))
	}
	if got := s.ExtractHistory(1); len(got) != 0 {
		t.Fatalf("empty history has %d events", len(got))
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.CurrentVersion() != 0 {
		t.Fatalf("fresh CurrentVersion = %d", s.CurrentVersion())
	}
}

func testInsertFindTag(t *testing.T, mk Factory) {
	s := open(t, mk)
	if err := s.Insert(10, 100); err != nil {
		t.Fatal(err)
	}
	v0 := s.Tag()
	if v0 != 0 {
		t.Fatalf("first Tag = %d", v0)
	}
	if err := s.Insert(10, 200); err != nil {
		t.Fatal(err)
	}
	v1 := s.Tag()
	if v1 != 1 {
		t.Fatalf("second Tag = %d", v1)
	}
	if s.CurrentVersion() != 2 {
		t.Fatalf("CurrentVersion = %d", s.CurrentVersion())
	}
	if v, ok := s.Find(10, v0); !ok || v != 100 {
		t.Fatalf("Find at v0 = %d,%v", v, ok)
	}
	if v, ok := s.Find(10, v1); !ok || v != 200 {
		t.Fatalf("Find at v1 = %d,%v", v, ok)
	}
	// future version sees latest
	if v, ok := s.Find(10, 99); !ok || v != 200 {
		t.Fatalf("Find at future = %d,%v", v, ok)
	}
	if _, ok := s.Find(11, v1); ok {
		t.Fatal("Find of absent key returned ok")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func testRemove(t *testing.T, mk Factory) {
	s := open(t, mk)
	must(t, s.Insert(5, 50))
	v0 := s.Tag()
	must(t, s.Remove(5))
	v1 := s.Tag()
	must(t, s.Insert(5, 55))
	v2 := s.Tag()
	if v, ok := s.Find(5, v0); !ok || v != 50 {
		t.Fatalf("before remove: %d,%v", v, ok)
	}
	if _, ok := s.Find(5, v1); ok {
		t.Fatal("after remove: still found")
	}
	if v, ok := s.Find(5, v2); !ok || v != 55 {
		t.Fatalf("after reinsert: %d,%v", v, ok)
	}
	// removing an absent key is tolerated and recorded
	if err := s.Remove(12345); err != nil {
		t.Fatalf("Remove of absent key: %v", err)
	}
	if _, ok := s.Find(12345, s.Tag()); ok {
		t.Fatal("removed-absent key is present")
	}
}

func testMarkerRejected(t *testing.T, mk Factory) {
	s := open(t, mk)
	if err := s.Insert(1, kv.Marker); err == nil {
		t.Fatal("Insert of marker value succeeded")
	}
}

func testSnapshotSorted(t *testing.T, mk Factory) {
	s := open(t, mk)
	rng := mt19937.New(42)
	want := map[uint64]uint64{}
	for i := 0; i < 2000; i++ {
		k := rng.Uint64()
		want[k] = k / 3
		must(t, s.Insert(k, k/3))
	}
	v := s.Tag()
	snap := s.ExtractSnapshot(v)
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d pairs, want %d", len(snap), len(want))
	}
	for i, p := range snap {
		if i > 0 && snap[i-1].Key >= p.Key {
			t.Fatalf("snapshot unsorted at %d", i)
		}
		if want[p.Key] != p.Value {
			t.Fatalf("snapshot value mismatch for key %d", p.Key)
		}
	}
}

func testSnapshotTimeTravel(t *testing.T, mk Factory) {
	s := open(t, mk)
	// version 0: {1:10, 2:20}; version 1: {1:11, 3:30}; version 2: {3:30}
	must(t, s.Insert(1, 10))
	must(t, s.Insert(2, 20))
	v0 := s.Tag()
	must(t, s.Insert(1, 11))
	must(t, s.Remove(2))
	must(t, s.Insert(3, 30))
	v1 := s.Tag()
	must(t, s.Remove(1))
	v2 := s.Tag()

	check := func(v uint64, want []kv.KV) {
		t.Helper()
		got := s.ExtractSnapshot(v)
		if len(got) != len(want) {
			t.Fatalf("snapshot(%d) = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("snapshot(%d) = %v, want %v", v, got, want)
			}
		}
	}
	check(v0, []kv.KV{{Key: 1, Value: 10}, {Key: 2, Value: 20}})
	check(v1, []kv.KV{{Key: 1, Value: 11}, {Key: 3, Value: 30}})
	check(v2, []kv.KV{{Key: 3, Value: 30}})
}

func testHistory(t *testing.T, mk Factory) {
	s := open(t, mk)
	must(t, s.Insert(7, 100))
	s.Tag()
	s.Tag() // empty version
	must(t, s.Remove(7))
	s.Tag()
	must(t, s.Insert(7, 300))
	s.Tag()

	h := s.ExtractHistory(7)
	if len(h) != 3 {
		t.Fatalf("history has %d events: %v", len(h), h)
	}
	if h[0].Version != 0 || h[0].Value != 100 || h[0].Removed() {
		t.Fatalf("event 0: %+v", h[0])
	}
	if h[1].Version != 2 || !h[1].Removed() {
		t.Fatalf("event 1: %+v", h[1])
	}
	if h[2].Version != 3 || h[2].Value != 300 {
		t.Fatalf("event 2: %+v", h[2])
	}
}

func testExtractRange(t *testing.T, mk Factory) {
	s := open(t, mk)
	// keys 10,20,...,100 at v0; remove 50 and update 70 at v1
	for k := uint64(10); k <= 100; k += 10 {
		must(t, s.Insert(k, k+1))
	}
	v0 := s.Tag()
	must(t, s.Remove(50))
	must(t, s.Insert(70, 777))
	v1 := s.Tag()

	check := func(lo, hi, ver uint64, want []kv.KV) {
		t.Helper()
		got := s.ExtractRange(lo, hi, ver)
		if len(got) != len(want) {
			t.Fatalf("Range[%d,%d)@%d = %v, want %v", lo, hi, ver, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Range[%d,%d)@%d = %v, want %v", lo, hi, ver, got, want)
			}
		}
	}
	check(20, 60, v0, []kv.KV{{Key: 20, Value: 21}, {Key: 30, Value: 31}, {Key: 40, Value: 41}, {Key: 50, Value: 51}})
	check(20, 60, v1, []kv.KV{{Key: 20, Value: 21}, {Key: 30, Value: 31}, {Key: 40, Value: 41}})
	check(50, 51, v0, []kv.KV{{Key: 50, Value: 51}})
	check(50, 51, v1, nil)
	check(65, 75, v1, []kv.KV{{Key: 70, Value: 777}})
	check(0, 10, v1, nil)    // below all keys
	check(101, 200, v1, nil) // above all keys
	check(40, 40, v1, nil)   // empty interval

	// full range equals the snapshot
	full := s.ExtractRange(0, ^uint64(0), v1)
	snap := s.ExtractSnapshot(v1)
	if len(full) != len(snap) {
		t.Fatalf("full range %d pairs, snapshot %d", len(full), len(snap))
	}
	for i := range snap {
		if full[i] != snap[i] {
			t.Fatalf("full range differs from snapshot at %d", i)
		}
	}
}

// testRangeStitch verifies the sharding identity parallel extraction rests
// on: splitting the key space at arbitrary points and concatenating the
// per-span ExtractRange results must reproduce ExtractSnapshot exactly.
func testRangeStitch(t *testing.T, mk Factory) {
	s := open(t, mk)
	rng := mt19937.New(17)
	for i := 0; i < 3000; i++ {
		must(t, s.Insert(rng.Uint64(), uint64(i)))
		if i%11 == 5 {
			must(t, s.Remove(rng.Uint64()))
		}
		if i%500 == 499 {
			s.Tag()
		}
	}
	v := s.Tag()
	want := s.ExtractSnapshot(v)
	for _, shards := range []int{2, 5, 16} {
		splits := make([]uint64, 0, shards+1)
		splits = append(splits, 0)
		for i := 1; i < shards; i++ {
			splits = append(splits, rng.Uint64())
		}
		splits = append(splits, ^uint64(0))
		sort.Slice(splits, func(i, j int) bool { return splits[i] < splits[j] })
		var got []kv.KV
		for i := 0; i+1 < len(splits); i++ {
			got = append(got, s.ExtractRange(splits[i], splits[i+1], v)...)
		}
		// The final split is exclusive; ^uint64(0) itself is never a key
		// here (rng cannot practically produce it), so coverage is total.
		if len(got) != len(want) {
			t.Fatalf("%d shards stitched to %d pairs, snapshot has %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%d shards: stitch diverges at %d: %+v != %+v", shards, i, got[i], want[i])
			}
		}
	}
}

// testSnapshotStream verifies the streaming extraction contract through the
// kv.StreamSnapshot/StreamRange helpers — native streamer when the store
// has one (PSkipList's parallel shard stream, the network client's chunked
// wire path), materialize-then-slice fallback otherwise: chunks are
// non-empty, key-ordered, and concatenate to exactly the materialized
// result, including while writers keep appending to later versions.
func testSnapshotStream(t *testing.T, mk Factory) {
	s := open(t, mk)
	rng := mt19937.New(23)
	for i := 0; i < 3000; i++ {
		must(t, s.Insert(rng.Uint64(), uint64(i)))
		if i%13 == 7 {
			must(t, s.Remove(rng.Uint64()))
		}
	}
	sealed := s.Tag()
	collect := func(stream func(emit func([]kv.KV) error) error) []kv.KV {
		t.Helper()
		var out []kv.KV
		if err := stream(func(pairs []kv.KV) error {
			if len(pairs) == 0 {
				t.Fatal("empty chunk emitted")
			}
			if len(out) > 0 && out[len(out)-1].Key >= pairs[0].Key {
				t.Fatal("chunk order broken")
			}
			return appendCopy(&out, pairs)
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	checkEq := func(what string, got, want []kv.KV) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d pairs, want %d", what, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s diverges at %d", what, i)
			}
		}
	}
	checkEq("stream", collect(func(emit func([]kv.KV) error) error {
		return kv.StreamSnapshot(s, sealed, emit)
	}), s.ExtractSnapshot(sealed))
	lo, hi := uint64(1)<<62, uint64(3)<<62
	checkEq("range stream", collect(func(emit func([]kv.KV) error) error {
		return kv.StreamRange(s, lo, hi, sealed, emit)
	}), s.ExtractRange(lo, hi, sealed))

	// The sealed version must stream identically while writers append to
	// later versions (under -race this also exercises the concurrent
	// reader paths of the sharded walk).
	want := s.ExtractSnapshot(sealed)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := mt19937.New(31)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Insert(wrng.Uint64(), 1); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		checkEq("stream during inserts", collect(func(emit func([]kv.KV) error) error {
			return kv.StreamSnapshot(s, sealed, emit)
		}), want)
	}
	close(stop)
	wg.Wait()
}

// appendCopy copies pairs into *out (chunk slices are only valid during the
// emit call). The error return fits the emit signature.
func appendCopy(out *[]kv.KV, pairs []kv.KV) error {
	*out = append(*out, pairs...)
	return nil
}

// testQuickModel drives the store with random op sequences and compares
// Find/ExtractSnapshot at every version against a naive model.
func testQuickModel(t *testing.T, mk Factory) {
	f := func(ops []uint32) bool {
		s := open(t, mk)
		type ev struct {
			ver, key, val uint64
			rm            bool
		}
		var log []ev
		for _, op := range ops {
			key := uint64(op % 16)
			switch op % 5 {
			case 0, 1, 2:
				val := uint64(op>>4) + 1
				must(t, s.Insert(key, val))
				log = append(log, ev{s.CurrentVersion(), key, val, false})
			case 3:
				must(t, s.Remove(key))
				log = append(log, ev{s.CurrentVersion(), key, 0, true})
			case 4:
				s.Tag()
			}
		}
		last := s.Tag()
		for v := uint64(0); v <= last; v++ {
			model := map[uint64]uint64{}
			for _, e := range log {
				if e.ver > v {
					break
				}
				if e.rm {
					delete(model, e.key)
				} else {
					model[e.key] = e.val
				}
			}
			for key := uint64(0); key < 16; key++ {
				got, ok := s.Find(key, v)
				wantV, wantOK := model[key]
				if ok != wantOK || (ok && got != wantV) {
					t.Logf("Find(%d,%d) = %d,%v want %d,%v", key, v, got, ok, wantV, wantOK)
					return false
				}
			}
			snap := s.ExtractSnapshot(v)
			if len(snap) != len(model) {
				t.Logf("snapshot(%d) size %d want %d", v, len(snap), len(model))
				return false
			}
			for _, p := range snap {
				if model[p.Key] != p.Value {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func testConcurrentDistinct(t *testing.T, mk Factory) {
	s := open(t, mk)
	workers := runtime.GOMAXPROCS(0)
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(w)<<32 | uint64(i)
				if err := s.Insert(k, k+1); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	v := s.Tag()
	if s.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", s.Len(), workers*per)
	}
	snap := s.ExtractSnapshot(v)
	if len(snap) != workers*per {
		t.Fatalf("snapshot has %d pairs, want %d", len(snap), workers*per)
	}
	for i, p := range snap {
		if i > 0 && snap[i-1].Key >= p.Key {
			t.Fatalf("snapshot unsorted at %d", i)
		}
		if p.Value != p.Key+1 {
			t.Fatalf("bad value for key %d", p.Key)
		}
	}
}

// testConcurrentMixed: writers insert/remove on private key ranges while
// taggers advance versions; afterwards, each writer's final state must be
// visible.
func testConcurrentMixed(t *testing.T, mk Factory) {
	s := open(t, mk)
	workers := runtime.GOMAXPROCS(0)
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := mt19937.New(uint64(w) + 7)
			base := uint64(w) << 32
			for i := 0; i < per; i++ {
				k := base | rng.Uint64n(100)
				switch rng.Uint64n(4) {
				case 0:
					if err := s.Remove(k); err != nil {
						t.Errorf("remove: %v", err)
						return
					}
				default:
					if err := s.Insert(k, uint64(i)); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				}
				if i%10 == 0 {
					s.Tag()
				}
			}
		}(w)
	}
	wg.Wait()
	v := s.Tag()
	snap := s.ExtractSnapshot(v)
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Key >= snap[i].Key {
			t.Fatalf("snapshot unsorted at %d", i)
		}
	}
	// Every pair in the snapshot must be consistent with that key's own
	// history (the rightmost event at or below v).
	for _, p := range snap {
		h := s.ExtractHistory(p.Key)
		var want uint64
		ok := false
		for _, e := range h {
			if e.Version <= v {
				want, ok = e.Value, !e.Removed()
			}
		}
		if !ok || want != p.Value {
			t.Fatalf("snapshot pair %+v inconsistent with history %v", p, h)
		}
	}
}

// testConcurrentReaders: concurrent finds/histories/snapshots while writers
// run; results must always be internally consistent (values only from the
// key's own past).
func testConcurrentReaders(t *testing.T, mk Factory) {
	s := open(t, mk)
	const keys = 500
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 4000; i++ {
				k := uint64((i*7 + w*3) % keys)
				// value encodes the key so readers can validate
				if err := s.Insert(k, k<<32|uint64(i)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				s.Tag()
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := mt19937.New(uint64(r) + 99)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Uint64n(keys)
				ver := rng.Uint64n(4000)
				if v, ok := s.Find(k, ver); ok && v>>32 != k {
					t.Errorf("Find(%d) returned foreign value %d", k, v)
					return
				}
				for _, e := range s.ExtractHistory(k) {
					if !e.Removed() && e.Value>>32 != k {
						t.Errorf("history of %d has foreign value %d", k, e.Value)
						return
					}
				}
			}
		}(r)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

// RunSnapshotConsistency verifies the multi-thread prefix-consistency
// property the pc/fc clock provides: a snapshot extracted at a sealed
// version contains every operation that finished before the Tag.
func RunSnapshotConsistency(t *testing.T, mk Factory) {
	s := open(t, mk)
	workers := runtime.GOMAXPROCS(0)
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Insert(uint64(w)<<32|uint64(i), uint64(i)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait() // every insert has returned, hence finished
	v := s.Tag()
	snap := s.ExtractSnapshot(v)
	if len(snap) != workers*per {
		t.Fatalf("sealed snapshot misses finished inserts: %d of %d",
			len(snap), workers*per)
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i].Key < snap[j].Key })
}
