package storetest

import (
	"errors"
	"testing"

	"mvkv/internal/kv"
)

// futureVer is a version far above anything these tests seal; Find at it
// reads the latest committed state.
const futureVer = uint64(1) << 62

// testTransactions exercises the optimistic multi-key transaction contract
// (kv.Begin / kv.CommitWrites): read-your-writes over a pinned snapshot,
// invisibility of uncommitted and aborted write sets, first-committer-wins
// conflict detection with the typed error, and all-or-nothing aborts. The
// stores with a native TxnCommitter (PSkipList, the TCP client, the cluster
// store) take their capability path; the rest take the documented helper
// fallback — the observable semantics here must be identical.
func testTransactions(t *testing.T, mk Factory) {
	t.Run("ReadYourWrites", func(t *testing.T) {
		s := open(t, mk)
		must(t, s.Insert(1, 10))
		txn := kv.Begin(s)
		rts := txn.ReadTS()
		if v, ok := txn.Get(1); !ok || v != 10 {
			t.Fatalf("Get(1) = %d,%v before any write", v, ok)
		}
		must(t, txn.Set(1, 11))
		must(t, txn.Set(2, 22))
		must(t, txn.Delete(1))
		if _, ok := txn.Get(1); ok {
			t.Fatal("buffered delete still reads as present")
		}
		if v, ok := txn.Get(2); !ok || v != 22 {
			t.Fatalf("Get(2) = %d,%v after buffered write", v, ok)
		}
		// Buffered writes must be invisible outside the transaction.
		if _, ok := s.Find(2, futureVer); ok {
			t.Fatal("uncommitted write visible to a plain Find")
		}
		ts, err := txn.Commit()
		must(t, err)
		if ts <= rts {
			t.Fatalf("commit ts %d not above read ts %d", ts, rts)
		}
		if _, ok := s.Find(1, ts); ok {
			t.Fatal("committed delete still present")
		}
		if v, ok := s.Find(2, ts); !ok || v != 22 {
			t.Fatalf("Find(2) at commit ts = %d,%v", v, ok)
		}
		// The pinned snapshot itself must be untouched.
		if v, ok := s.Find(1, rts); !ok || v != 10 {
			t.Fatalf("Find(1) at read ts = %d,%v", v, ok)
		}
	})

	t.Run("SnapshotIsolation", func(t *testing.T) {
		s := open(t, mk)
		must(t, s.Insert(5, 50))
		txn := kv.Begin(s)
		must(t, s.Insert(5, 51)) // foreign write after the snapshot
		if v, ok := txn.Get(5); !ok || v != 50 {
			t.Fatalf("Get(5) = %d,%v — transaction saw a write newer than its snapshot", v, ok)
		}
		must(t, txn.Abort())
	})

	t.Run("AbortInvisible", func(t *testing.T) {
		s := open(t, mk)
		must(t, s.Insert(5, 50))
		txn := kv.Begin(s)
		must(t, txn.Set(5, 55))
		must(t, txn.Set(6, 66))
		must(t, txn.Delete(5))
		must(t, txn.Abort())
		if v, ok := s.Find(5, futureVer); !ok || v != 50 {
			t.Fatalf("Find(5) = %d,%v after abort", v, ok)
		}
		if _, ok := s.Find(6, futureVer); ok {
			t.Fatal("aborted write set leaked key 6")
		}
		if _, err := txn.Commit(); !errors.Is(err, kv.ErrTxnDone) {
			t.Fatalf("Commit after Abort = %v, want ErrTxnDone", err)
		}
	})

	t.Run("FirstCommitterWins", func(t *testing.T) {
		s := open(t, mk)
		must(t, s.Insert(7, 70))
		must(t, s.Insert(8, 80))
		t1 := kv.Begin(s)
		t2 := kv.Begin(s)
		must(t, t2.Set(7, 71))
		if _, err := t2.Commit(); err != nil {
			t.Fatal(err)
		}
		must(t, t1.Set(7, 72)) // overlaps t2's committed write
		must(t, t1.Set(8, 82)) // disjoint key — must not land either
		_, err := t1.Commit()
		if err == nil {
			t.Fatal("conflicting commit succeeded")
		}
		if !errors.Is(err, kv.ErrConflict) {
			t.Fatalf("conflict error %v does not match kv.ErrConflict", err)
		}
		var ce *kv.ConflictError
		if !errors.As(err, &ce) {
			t.Fatalf("conflict error %T carries no *kv.ConflictError", err)
		}
		if ce.Key != 7 {
			t.Fatalf("conflict blamed key %d, want 7", ce.Key)
		}
		if ce.Latest <= ce.ReadTS {
			t.Fatalf("conflict with Latest %d <= ReadTS %d", ce.Latest, ce.ReadTS)
		}
		// All-or-nothing: the aborted transaction changed neither key.
		if v, ok := s.Find(7, futureVer); !ok || v != 71 {
			t.Fatalf("Find(7) = %d,%v — aborted txn overwrote the winner", v, ok)
		}
		if v, ok := s.Find(8, futureVer); !ok || v != 80 {
			t.Fatalf("Find(8) = %d,%v — aborted txn leaked its disjoint write", v, ok)
		}
		// With the conflict settled, a fresh transaction commits cleanly.
		t3 := kv.Begin(s)
		must(t, t3.Set(7, 73))
		if _, err := t3.Commit(); err != nil {
			t.Fatal(err)
		}
		if v, ok := s.Find(7, futureVer); !ok || v != 73 {
			t.Fatalf("Find(7) = %d,%v after retry commit", v, ok)
		}
	})

	t.Run("DisjointCommits", func(t *testing.T) {
		s := open(t, mk)
		t1 := kv.Begin(s)
		t2 := kv.Begin(s)
		must(t, t1.Set(201, 1))
		must(t, t2.Set(202, 2))
		if _, err := t1.Commit(); err != nil {
			t.Fatal(err)
		}
		if _, err := t2.Commit(); err != nil {
			t.Fatalf("disjoint write set aborted: %v", err)
		}
		if v, ok := s.Find(201, futureVer); !ok || v != 1 {
			t.Fatalf("Find(201) = %d,%v", v, ok)
		}
		if v, ok := s.Find(202, futureVer); !ok || v != 2 {
			t.Fatalf("Find(202) = %d,%v", v, ok)
		}
	})

	t.Run("EmptyCommit", func(t *testing.T) {
		s := open(t, mk)
		txn := kv.Begin(s)
		rts := txn.ReadTS()
		ts, err := txn.Commit()
		must(t, err)
		if ts != rts {
			t.Fatalf("empty commit ts %d, want read ts %d", ts, rts)
		}
		if _, err := txn.Commit(); !errors.Is(err, kv.ErrTxnDone) {
			t.Fatalf("double Commit = %v, want ErrTxnDone", err)
		}
		if err := txn.Set(1, 1); !errors.Is(err, kv.ErrTxnDone) {
			t.Fatalf("Set after Commit = %v, want ErrTxnDone", err)
		}
	})

	t.Run("LastWritePerKeyWins", func(t *testing.T) {
		s := open(t, mk)
		txn := kv.Begin(s)
		must(t, txn.Set(9, 1))
		must(t, txn.Set(9, 2))
		ts, err := txn.Commit()
		must(t, err)
		if v, ok := s.Find(9, ts); !ok || v != 2 {
			t.Fatalf("Find(9) = %d,%v, want the last buffered write", v, ok)
		}
	})
}
