package vhistory

import "testing"

// BenchmarkAblationTailLazy measures the paper's design: appends never
// touch the tail; a query pays a one-off extension later.
func BenchmarkAblationTailLazy(b *testing.B) {
	c := NewClock()
	h := &EHistory{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Append(uint64(i), uint64(i), c)
	}
	b.StopTimer()
	if _, ok := h.Find(uint64(b.N-1), c); !ok {
		b.Fatal("find failed")
	}
}

// BenchmarkAblationTailEager measures the alternative the paper rejects:
// every append immediately exposes the new entry by extending the tail (an
// extra scan per write that grows with in-flight commits and adds CAS
// traffic on the hot path).
func BenchmarkAblationTailEager(b *testing.B) {
	c := NewClock()
	h := &EHistory{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Append(uint64(i), uint64(i), c)
		h.extend(uint64(i), c)
	}
}

// BenchmarkAblationClockWindow sweeps the commit sequencer ring size; a
// tiny window forces backpressure on bursts of out-of-order commits.
func BenchmarkAblationClockWindow(b *testing.B) {
	for _, window := range []int{16, 1024, 1 << 16} {
		b.Run(sizeName(window), func(b *testing.B) {
			c := NewClockWindow(window)
			h := &EHistory{}
			for i := 0; i < b.N; i++ {
				h.Append(uint64(i), uint64(i), c)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<16:
		return "window=64k"
	case n >= 1024:
		return "window=1k"
	default:
		return "window=16"
	}
}
