package vhistory

import (
	"sort"

	"mvkv/internal/pmem"
)

// Batched appends stage a whole run of same-key entries before any persist
// fence is issued, so one Arena.Persist per contiguous span replaces one
// per entry. The durability ordering of Append is preserved phase-wise:
// every staged entry's version/value words are persisted before any of the
// batch's commit numbers is claimed, every commit number is persisted
// before any is announced to the clock, and per-key commit numbers stay
// strictly increasing in slot order because the slots of a run are claimed
// contiguously and finished in slot order. The primitives below are driven
// by core.Store.InsertBatch; see DESIGN.md for the full phase protocol.

// Span is a contiguous byte range of the arena awaiting a persist fence.
type Span struct {
	P pmem.Ptr
	N int64
}

// MergeSpans sorts spans by offset and merges those whose cache lines
// touch or are adjacent: fences round to whole lines, so bridging such a
// gap flushes no extra line. Flushing a neighbor's bytes early is always
// safe — identical to an arbitrary hardware cache-line eviction, which the
// recovery protocol already tolerates (see pmem.CrashEvict) — while spans
// further apart stay separate so fences never grow the flushed-line count.
func MergeSpans(spans []Span) []Span {
	if len(spans) < 2 {
		return spans
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].P < spans[j].P })
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		lastLine := (int64(last.P) + last.N - 1) / pmem.CacheLine
		if int64(s.P)/pmem.CacheLine <= lastLine+1 {
			if end := s.P + pmem.Ptr(s.N); end > last.P+pmem.Ptr(last.N) {
				last.N = int64(end - last.P)
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// ClaimRun atomically claims n consecutive slots and returns the first.
// Contiguity is what lets one run share fences: per-slot claims could
// interleave with concurrent appenders.
func (h *PHistory) ClaimRun(n int) uint64 {
	return h.pending.Add(uint64(n)) - uint64(n)
}

// UnclaimRun rolls back a claimed run none of whose slots has been staged,
// reporting whether the rollback won. It loses when a later claim already
// moved the counter past the run; the history then has a hole no one will
// stage (see ErrSlotLeaked) and the store must stop accepting writes.
func (h *PHistory) UnclaimRun(start uint64, n int) bool {
	return h.pending.CompareAndSwap(start+uint64(n), start)
}

// PendingHint returns the current claim count. Advisory only — concurrent
// appenders may move it immediately. The batched append path uses it to
// size its allocation wave before anything is claimed, so an allocation
// failure can abort the batch with nothing to roll back.
func (h *PHistory) PendingHint() uint64 { return h.pending.Load() }

// RunFits reports whether a run of n slots starting at start stays within
// the per-key slot capacity (see ErrHistoryFull). Callers must check it
// before touching the directory words RunSegments names: past-capacity
// segment indexes have no directory word.
func RunFits(start uint64, n int) bool { return start+uint64(n) <= maxSlots }

// RunSegments returns the first and last segment index touched by the run
// of n slots starting at start.
func RunSegments(start uint64, n int) (first, last int) {
	first, _ = locate(start)
	last, _ = locate(start + uint64(n) - 1)
	return first, last
}

// SegmentMissing reports whether segment seg has no storage linked yet.
func (h *PHistory) SegmentMissing(a *pmem.Arena, seg int) bool {
	return a.LoadPtr(h.dirWord(seg)) == pmem.NullPtr
}

// InstallSegment links fresh as segment seg, reporting whether this call
// won the directory CAS (on loss the caller frees fresh). Unlike the
// single-op path it does not persist the directory word: the caller fences
// it — immediately for published histories, or within the header span for
// histories not yet published — before any commit number that lands in the
// segment can become durable.
func (h *PHistory) InstallSegment(a *pmem.Arena, seg int, fresh pmem.Ptr) bool {
	return a.CompareAndSwapPtr(h.dirWord(seg), pmem.NullPtr, fresh)
}

// DirSpan returns the byte span of segment seg's directory word.
func (h *PHistory) DirSpan(seg int) Span {
	return Span{P: h.dirWord(seg), N: 8}
}

// HeaderSpan returns the span of header words a fresh key's first run
// writes: the key word, the (zero) floor word, and the directory words of
// segments 0..lastSeg. The remaining directory words need no fence — batch
// headers come from the arena's bump allocator or its free lists, whose
// blocks are durably zero when handed out, so their unwritten words are
// durably zero already.
func (h *PHistory) HeaderSpan(lastSeg int) Span {
	return Span{P: h.Head, N: int64(3+lastSeg) * 8}
}

// StageRun writes the version and value words of the run's slots without
// persisting and returns the byte spans covering them (one per segment
// touched). All required segments must already be linked. Like Append, a
// run entering a non-empty history waits for its predecessor entry's
// version and never records a version below it.
func (h *PHistory) StageRun(a *pmem.Arena, start, version uint64, values []uint64) []Span {
	// As in Append, slots below the floor are dead (possibly in freed
	// segments) and must neither clamp nor order a fresh run.
	if start > h.floor.Load() {
		prev := h.loadedEntryPtr(a, start-1)
		var s spin
		for {
			pv := a.LoadUint64(prev)
			if pv != 0 {
				if pv-1 > version {
					version = pv - 1
				}
				break
			}
			s.wait()
		}
	}
	spans := make([]Span, 0, 2)
	spanStart := pmem.NullPtr
	var spanEnd pmem.Ptr
	for i, v := range values {
		ep := h.loadedEntryPtr(a, start+uint64(i))
		if ep != spanEnd {
			if spanStart != pmem.NullPtr {
				spans = append(spans, Span{P: spanStart, N: int64(spanEnd - spanStart)})
			}
			spanStart = ep
		}
		spanEnd = ep + EntryBytes
		a.StoreUint64(ep+8, v)
		a.StoreUint64(ep, version+1)
	}
	return append(spans, Span{P: spanStart, N: int64(spanEnd - spanStart)})
}

// SeqSpan returns the byte span of a staged slot's commit-number word. The
// transactional commit path persists the span holding the batch's lowest
// commit number last, so a crash anywhere earlier leaves a sequence gap
// that recovery's contiguity rule prunes the whole batch behind
// (all-or-nothing; see core.Store.ApplyWrites).
func (h *PHistory) SeqSpan(a *pmem.Arena, slot uint64) Span {
	return Span{P: h.loadedEntryPtr(a, slot) + 16, N: 8}
}

// FinishRunEntry claims the commit number for one staged slot and stores
// it without persisting; the caller persists the run's spans (which cover
// every seq word) and only then announces the numbers with Clock.Commit.
// Only the first slot of a run synchronizes: it waits for the history to
// be published and for the foreign predecessor's commit number, exactly as
// Append does — later slots follow their own run's program order.
func (h *PHistory) FinishRunEntry(a *pmem.Arena, slot uint64, firstOfRun bool, c *Clock) uint64 {
	ep := h.loadedEntryPtr(a, slot)
	if firstOfRun {
		var s spin
		for !h.published.Load() {
			s.wait()
		}
		if slot > h.floor.Load() {
			prev := h.loadedEntryPtr(a, slot-1)
			for a.LoadUint64(prev+16) == 0 {
				s.wait()
			}
		}
	}
	seq := c.Next()
	a.StoreUint64(ep+16, seq)
	return seq
}
