// Package vhistory implements per-key version histories with the paper's
// "lazy tail" concurrency scheme (Algorithm 1), in both ephemeral and
// persistent-memory variants.
//
// A history is an append-only sequence of (version, value) entries; a
// removal appends the reserved Marker value. Appends claim a slot by
// atomically incrementing a per-key pending counter, write the entry, and
// then "finish" it by acquiring a globally ordered commit sequence number
// from the store-wide clock (pc in the paper). Readers never trust pending:
// they expose entries by lazily extending the per-key tail past slots whose
// commit number is covered by the global finished counter (fc), which
// guarantees that a query never observes an operation while some operation
// with a lower global order is still in flight.
//
// Deviation from the paper, documented in DESIGN.md: Algorithm 1 advances fc
// by at most one per find, by inspecting only the visited key. That makes a
// single extract_snapshot unable to observe operations that finished before
// it started (fc only catches up over many queries). We keep the lazy-tail
// design but track finished commits in a lock-free ring (a sequencer), so
// any reader can cheaply advance fc across keys it never visits. Appends
// still never touch tails — tails are extended only by queries, exactly as
// in the paper.
package vhistory

import (
	"runtime"
	"sync/atomic"
)

// Marker is the reserved value denoting a removal in a version history, the
// paper's "special marker outside the allowable range of valid values".
const Marker = ^uint64(0)

// MaxVersion is the largest valid version number. (Versions are stored
// internally as version+1 so that zero means "not yet written".)
const MaxVersion = ^uint64(0) - 1

// DefaultClockWindow is the default number of in-flight (claimed but not yet
// globally finished) operations the clock tolerates before appenders briefly
// wait; it bounds the sequencer ring.
const DefaultClockWindow = 1 << 16

// Clock is the store-global commit clock: pc assigns a total order to
// finishing operations and fc tracks the longest prefix of that order whose
// operations have all finished. All methods are safe for concurrent use.
type Clock struct {
	pc   atomic.Uint64
	fc   atomic.Uint64
	mask uint64
	ring []atomic.Uint64
}

// NewClock returns a clock with the default window.
func NewClock() *Clock { return NewClockWindow(DefaultClockWindow) }

// NewClockWindow returns a clock tolerating up to window in-flight commits.
// window is rounded up to a power of two.
func NewClockWindow(window int) *Clock {
	n := 1
	for n < window {
		n <<= 1
	}
	return &Clock{mask: uint64(n - 1), ring: make([]atomic.Uint64, n)}
}

// Next claims the next commit sequence number (1-based). The caller must
// eventually call Commit with it.
func (c *Clock) Next() uint64 { return c.pc.Add(1) }

// Commit marks seq as finished. If the ring is full (more than window
// commits ahead of fc), Commit helps advance fc and waits for room.
func (c *Clock) Commit(seq uint64) {
	for seq-c.fc.Load() > c.mask {
		c.help()
		runtime.Gosched()
	}
	c.ring[seq&c.mask].Store(seq)
	c.help()
}

// help advances fc over every consecutively finished commit.
func (c *Clock) help() {
	for {
		fc := c.fc.Load()
		if c.ring[(fc+1)&c.mask].Load() != fc+1 {
			return
		}
		c.fc.CompareAndSwap(fc, fc+1)
	}
}

// Covered reports whether all commits up to and including seq have finished,
// helping fc forward first. This is the reader-side gate of Algorithm 1
// ("finished[t] <= fc+1" generalized across keys).
func (c *Clock) Covered(seq uint64) bool {
	if c.fc.Load() >= seq {
		return true
	}
	c.help()
	return c.fc.Load() >= seq
}

// Fc returns the current globally finished prefix.
func (c *Clock) Fc() uint64 { return c.fc.Load() }

// Pc returns the number of commit sequence numbers claimed so far.
func (c *Clock) Pc() uint64 { return c.pc.Load() }

// Reset forces the clock to a recovered state where commits 1..seq are
// finished and seq is the last claimed number. Used after crash recovery;
// must not race with any other use.
func (c *Clock) Reset(seq uint64) {
	c.pc.Store(seq)
	c.fc.Store(seq)
	for i := range c.ring {
		c.ring[i].Store(0)
	}
}

// Quiesce waits until every claimed commit has finished (fc == pc). It is a
// testing and shutdown aid; concurrent new claims may extend the wait.
func (c *Clock) Quiesce() {
	for c.fc.Load() != c.pc.Load() {
		c.help()
		runtime.Gosched()
	}
}

// spin is a bounded busy-wait helper used by appenders waiting on a
// predecessor: cheap pause first, then yield to the scheduler so progress is
// guaranteed even when goroutines outnumber CPUs.
type spin int

func (s *spin) wait() {
	*s++
	if *s%64 == 0 {
		runtime.Gosched()
	}
}
