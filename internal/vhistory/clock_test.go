package vhistory

import (
	"runtime"
	"sync"
	"testing"

	"mvkv/internal/mt19937"
)

func TestClockSequentialCommit(t *testing.T) {
	c := NewClock()
	for i := 0; i < 100; i++ {
		seq := c.Next()
		if seq != uint64(i+1) {
			t.Fatalf("Next = %d, want %d", seq, i+1)
		}
		if c.Covered(seq) {
			t.Fatalf("seq %d covered before Commit", seq)
		}
		c.Commit(seq)
		if !c.Covered(seq) {
			t.Fatalf("seq %d not covered after Commit", seq)
		}
	}
	if c.Fc() != 100 || c.Pc() != 100 {
		t.Fatalf("fc=%d pc=%d", c.Fc(), c.Pc())
	}
}

func TestClockOutOfOrderCommit(t *testing.T) {
	c := NewClock()
	s1, s2, s3 := c.Next(), c.Next(), c.Next()
	c.Commit(s3)
	if c.Covered(s1) || c.Covered(s3) {
		t.Fatal("covered despite gap")
	}
	c.Commit(s1)
	if !c.Covered(s1) || c.Covered(s2) || c.Covered(s3) {
		t.Fatal("fc should stop at the s2 gap")
	}
	c.Commit(s2)
	if !c.Covered(s3) {
		t.Fatal("fc should cover everything now")
	}
}

func TestClockSmallWindowBackpressure(t *testing.T) {
	c := NewClockWindow(4)
	var wg sync.WaitGroup
	// More in-flight commits than the window: Commit must apply
	// backpressure but never deadlock, because commits eventually land in
	// order across goroutines.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Commit(c.Next())
			}
		}()
	}
	wg.Wait()
	c.Quiesce()
	if c.Fc() != 8000 {
		t.Fatalf("fc = %d, want 8000", c.Fc())
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	workers := runtime.GOMAXPROCS(0)
	const per = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := mt19937.New(uint64(w))
			pendingSeqs := make([]uint64, 0, 8)
			for i := 0; i < per; i++ {
				pendingSeqs = append(pendingSeqs, c.Next())
				// commit in random order, in small batches, to create gaps
				if len(pendingSeqs) == 8 || i == per-1 {
					rng.Shuffle(len(pendingSeqs), func(a, b int) {
						pendingSeqs[a], pendingSeqs[b] = pendingSeqs[b], pendingSeqs[a]
					})
					for _, s := range pendingSeqs {
						c.Commit(s)
					}
					pendingSeqs = pendingSeqs[:0]
				}
			}
		}(w)
	}
	wg.Wait()
	c.Quiesce()
	want := uint64(workers * per)
	if c.Fc() != want || c.Pc() != want {
		t.Fatalf("fc=%d pc=%d want %d", c.Fc(), c.Pc(), want)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	for i := 0; i < 10; i++ {
		c.Commit(c.Next())
	}
	c.Reset(42)
	if c.Fc() != 42 || c.Pc() != 42 {
		t.Fatalf("after Reset: fc=%d pc=%d", c.Fc(), c.Pc())
	}
	s := c.Next()
	if s != 43 {
		t.Fatalf("Next after Reset = %d", s)
	}
	c.Commit(s)
	if !c.Covered(43) {
		t.Fatal("post-reset commit not covered")
	}
}
