package vhistory

import "sync/atomic"

// eslot is one slot of an ephemeral history. version holds version+1 (zero
// means "not yet written"); seq holds the global commit number (zero means
// "not yet finished"). value is written before version and seq are stored,
// so any reader that has observed version != 0 (or seq != 0) also observes
// value.
type eslot struct {
	version atomic.Uint64
	value   uint64
	seq     atomic.Uint64
}

// EHistory is the ephemeral (in-memory) version history used by the
// ESkipList and LockedMap baselines. The zero value is an empty history.
type EHistory struct {
	pending atomic.Uint64
	tail    atomic.Uint64
	segs    [maxSegments]atomic.Pointer[[]eslot]
}

func (h *EHistory) segment(i int) *[]eslot {
	if s := h.segs[i].Load(); s != nil {
		return s
	}
	fresh := make([]eslot, segSize(i))
	if h.segs[i].CompareAndSwap(nil, &fresh) {
		return &fresh
	}
	return h.segs[i].Load()
}

func (h *EHistory) slot(i uint64) *eslot {
	if i >= maxSlots {
		panic(ErrHistoryFull)
	}
	seg, off := locate(i)
	return &(*h.segment(seg))[off]
}

// Append records that the key took value at version (Algorithm 1 insert).
// Concurrent appends to the same key are ordered by slot claim; if a racing
// append already recorded a higher version, this entry is promoted to that
// version so the history stays sorted (both operations are concurrent with
// the tag that separated their versions, so this is a valid linearization).
// The entry becomes visible to queries only once its commit number is
// covered by the clock's finished counter.
func (h *EHistory) Append(version, value uint64, c *Clock) {
	slot := h.pending.Add(1) - 1
	e := h.slot(slot)
	e.value = value
	if slot > 0 {
		prev := h.slot(slot - 1)
		var s spin
		for {
			pv := prev.version.Load()
			if pv != 0 {
				if pv-1 > version {
					version = pv - 1
				}
				break
			}
			s.wait()
		}
	}
	e.version.Store(version + 1)
	if slot > 0 {
		prev := h.slot(slot - 1)
		var s spin
		for prev.seq.Load() == 0 {
			s.wait()
		}
	}
	seq := c.Next()
	e.seq.Store(seq)
	c.Commit(seq)
}

// Remove appends a removal marker at version.
func (h *EHistory) Remove(version uint64, c *Clock) { h.Append(version, Marker, c) }

// extend advances the lazy tail past every finished slot whose version is
// <= version, and returns the (possibly grown) exclusive search bound. Only
// queries call extend; appends never move the tail (the "lazy" property).
func (h *EHistory) extend(version uint64, c *Clock) uint64 {
	t := h.tail.Load()
	grown := t
	for grown < h.pending.Load() {
		e := h.slot(grown)
		seq := e.seq.Load()
		if seq == 0 || !c.Covered(seq) {
			break
		}
		if e.version.Load()-1 > version {
			break
		}
		grown++
	}
	for grown > t {
		if h.tail.CompareAndSwap(t, grown) {
			break
		}
		t = h.tail.Load()
	}
	if grown > t {
		return grown
	}
	return t
}

// Find returns the value the key held at the given snapshot version
// (Algorithm 1 find): the rightmost finished entry with Version <= version.
// ok is false if the key had no value at that version (never inserted yet,
// or last change was a removal).
func (h *EHistory) Find(version uint64, c *Clock) (value uint64, ok bool) {
	n := h.extend(version, c)
	lo, hi := uint64(0), n
	for lo < hi { // find leftmost slot with entry.version > version
		mid := (lo + hi) / 2
		if h.slot(mid).version.Load()-1 > version {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return 0, false
	}
	e := h.slot(lo - 1)
	if v := e.value; v != Marker {
		return v, true
	}
	return 0, false
}

// Entries returns a copy of every finished entry (extract_history). The
// returned slice is ordered by version (ties possible when several updates
// landed in one snapshot; later entries win).
func (h *EHistory) Entries(c *Clock) []Entry {
	n := h.extend(MaxVersion, c)
	out := make([]Entry, n)
	for i := uint64(0); i < n; i++ {
		e := h.slot(i)
		out[i] = Entry{Version: e.version.Load() - 1, Value: e.value}
	}
	return out
}

// Len returns the number of finished, exposed entries (after extending).
func (h *EHistory) Len(c *Clock) int { return int(h.extend(MaxVersion, c)) }

// Prune discards every slot from keep onwards and resets the counters so
// the history ends at exactly its first keep entries. Only safe on a
// quiesced store (no concurrent appends or queries); used by version
// truncation (ESkipList TruncateFrom). Unlike the persistent analog there
// is no re-sequencing: an ephemeral store is never recovered from a crash,
// so commit-number gaps above the surviving entries are harmless (new
// appends still draw strictly larger numbers).
func (h *EHistory) Prune(keep uint64) {
	n := h.pending.Load()
	for i := keep; i < n; i++ {
		e := h.slot(i)
		e.version.Store(0)
		e.seq.Store(0)
		e.value = 0
	}
	h.pending.Store(keep)
	h.tail.Store(keep)
}
