package vhistory

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"mvkv/internal/mt19937"
	"mvkv/internal/pmem"
)

// history abstracts the two variants so the same behavioural tests run
// against both.
type history interface {
	Append(version, value uint64, c *Clock)
	Remove(version uint64, c *Clock)
	Find(version uint64, c *Clock) (uint64, bool)
	Entries(c *Clock) []Entry
	Len(c *Clock) int
}

type eWrap struct{ h *EHistory }

func (w eWrap) Append(v, val uint64, c *Clock)         { w.h.Append(v, val, c) }
func (w eWrap) Remove(v uint64, c *Clock)              { w.h.Remove(v, c) }
func (w eWrap) Find(v uint64, c *Clock) (uint64, bool) { return w.h.Find(v, c) }
func (w eWrap) Entries(c *Clock) []Entry               { return w.h.Entries(c) }
func (w eWrap) Len(c *Clock) int                       { return w.h.Len(c) }

type pWrap struct {
	h *PHistory
	a *pmem.Arena
}

func (w pWrap) Append(v, val uint64, c *Clock) {
	if err := w.h.Append(w.a, v, val, c); err != nil {
		panic(err)
	}
}
func (w pWrap) Remove(v uint64, c *Clock) {
	if err := w.h.Remove(w.a, v, c); err != nil {
		panic(err)
	}
}
func (w pWrap) Find(v uint64, c *Clock) (uint64, bool) { return w.h.Find(w.a, v, c) }
func (w pWrap) Entries(c *Clock) []Entry               { return w.h.Entries(w.a, c) }
func (w pWrap) Len(c *Clock) int                       { return w.h.Len(w.a, c) }

func variants(t *testing.T) map[string]func() history {
	t.Helper()
	return map[string]func() history{
		"ephemeral": func() history { return eWrap{&EHistory{}} },
		"persistent": func() history {
			a, err := pmem.New(64 << 20)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { a.Close() })
			h, err := NewPHistory(a, 1)
			if err != nil {
				t.Fatal(err)
			}
			h.SetPublished()
			return pWrap{h, a}
		},
	}
}

func TestLocateGeometry(t *testing.T) {
	// slots must map to consecutive positions with no gaps or overlaps
	seen := map[[2]uint64]bool{}
	next := map[int]uint64{}
	for slot := uint64(0); slot < 10000; slot++ {
		seg, off := locate(slot)
		if off != next[seg] {
			t.Fatalf("slot %d: segment %d offset %d, want %d", slot, seg, off, next[seg])
		}
		next[seg] = off + 1
		if off >= segSize(seg) {
			t.Fatalf("slot %d: offset %d beyond segment size %d", slot, off, segSize(seg))
		}
		k := [2]uint64{uint64(seg), off}
		if seen[k] {
			t.Fatalf("slot %d: duplicate location %v", slot, k)
		}
		seen[k] = true
	}
}

func TestFindBasics(t *testing.T) {
	for name, mk := range variants(t) {
		t.Run(name, func(t *testing.T) {
			c := NewClock()
			h := mk()
			// key inserted at v0, removed at v2, re-inserted at v3
			// (the paper's Figure 1 example for key 7)
			h.Append(0, 100, c)
			h.Remove(2, c)
			h.Append(3, 300, c)

			cases := []struct {
				v    uint64
				want uint64
				ok   bool
			}{
				{0, 100, true}, {1, 100, true},
				{2, 0, false}, // removed
				{3, 300, true}, {99, 300, true},
			}
			for _, tc := range cases {
				got, ok := h.Find(tc.v, c)
				if ok != tc.ok || (ok && got != tc.want) {
					t.Fatalf("Find(%d) = %d,%v want %d,%v", tc.v, got, ok, tc.want, tc.ok)
				}
			}
			if h.Len(c) != 3 {
				t.Fatalf("Len = %d", h.Len(c))
			}
			es := h.Entries(c)
			want := []Entry{{0, 100}, {2, Marker}, {3, 300}}
			for i := range want {
				if es[i] != want[i] {
					t.Fatalf("Entries[%d] = %+v want %+v", i, es[i], want[i])
				}
			}
			if !es[1].Removed() || es[0].Removed() {
				t.Fatal("Removed() misclassifies")
			}
		})
	}
}

func TestFindEmptyHistory(t *testing.T) {
	for name, mk := range variants(t) {
		t.Run(name, func(t *testing.T) {
			c := NewClock()
			h := mk()
			if _, ok := h.Find(5, c); ok {
				t.Fatal("empty history Find returned ok")
			}
			if h.Len(c) != 0 || len(h.Entries(c)) != 0 {
				t.Fatal("empty history has entries")
			}
		})
	}
}

func TestFindBeforeFirstVersion(t *testing.T) {
	for name, mk := range variants(t) {
		t.Run(name, func(t *testing.T) {
			c := NewClock()
			h := mk()
			h.Append(10, 7, c)
			if _, ok := h.Find(9, c); ok {
				t.Fatal("Find before first insert returned ok")
			}
			if v, ok := h.Find(10, c); !ok || v != 7 {
				t.Fatalf("Find(10) = %d,%v", v, ok)
			}
		})
	}
}

func TestSameVersionOverwrite(t *testing.T) {
	// several updates within one snapshot window: last one wins
	for name, mk := range variants(t) {
		t.Run(name, func(t *testing.T) {
			c := NewClock()
			h := mk()
			h.Append(5, 1, c)
			h.Append(5, 2, c)
			h.Append(5, 3, c)
			if v, ok := h.Find(5, c); !ok || v != 3 {
				t.Fatalf("Find(5) = %d,%v want 3", v, ok)
			}
		})
	}
}

// TestLongHistoryAcrossSegments exercises segment growth and binary search
// over many entries.
func TestLongHistoryAcrossSegments(t *testing.T) {
	for name, mk := range variants(t) {
		t.Run(name, func(t *testing.T) {
			c := NewClock()
			h := mk()
			const n = 3000
			for i := uint64(0); i < n; i++ {
				h.Append(i*2, i*10, c) // versions 0,2,4,...
			}
			for i := uint64(0); i < n; i++ {
				if v, ok := h.Find(i*2, c); !ok || v != i*10 {
					t.Fatalf("Find(%d) = %d,%v want %d", i*2, v, ok, i*10)
				}
				if v, ok := h.Find(i*2+1, c); !ok || v != i*10 { // odd versions see previous
					t.Fatalf("Find(%d) = %d,%v want %d", i*2+1, v, ok, i*10)
				}
			}
			if h.Len(c) != n {
				t.Fatalf("Len = %d", h.Len(c))
			}
		})
	}
}

// TestQuickAgainstModel: random append/remove/find sequences match a naive
// model.
func TestQuickAgainstModel(t *testing.T) {
	for name, mk := range variants(t) {
		if name == "persistent" {
			continue // quick allocates many arenas; covered by TestFind* and core tests
		}
		t.Run(name, func(t *testing.T) {
			f := func(ops []uint16) bool {
				c := NewClock()
				h := mk()
				var model []Entry
				version := uint64(0)
				for _, op := range ops {
					switch op % 4 {
					case 0, 1:
						val := uint64(op)
						h.Append(version, val, c)
						model = append(model, Entry{version, val})
					case 2:
						h.Remove(version, c)
						model = append(model, Entry{version, Marker})
					case 3:
						version++
					}
				}
				// verify Find at every version against the model
				for v := uint64(0); v <= version+1; v++ {
					var want uint64
					var ok bool
					for _, e := range model {
						if e.Version <= v {
							want, ok = e.Value, e.Value != Marker
						}
					}
					got, gok := h.Find(v, c)
					if gok != ok || (ok && got != want) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVersionPromotion: an append whose sampled version is older than its
// predecessor's is promoted so the history stays sorted — the linearization
// rule for same-key appends racing a tag.
func TestVersionPromotion(t *testing.T) {
	for name, mk := range variants(t) {
		t.Run(name, func(t *testing.T) {
			c := NewClock()
			h := mk()
			h.Append(7, 100, c) // later version first
			h.Append(5, 200, c) // stale sample: must be promoted to 7
			es := h.Entries(c)
			if len(es) != 2 || es[0].Version != 7 || es[1].Version != 7 {
				t.Fatalf("entries: %+v", es)
			}
			// last write at the promoted version wins
			if v, ok := h.Find(7, c); !ok || v != 200 {
				t.Fatalf("Find(7) = %d,%v", v, ok)
			}
			if _, ok := h.Find(6, c); ok {
				t.Fatal("Find(6) saw promoted entry")
			}
		})
	}
}

// TestConcurrentAppendSameKey: racing appends keep the history sorted by
// version and lose no entries.
func TestConcurrentAppendSameKey(t *testing.T) {
	for name, mk := range variants(t) {
		t.Run(name, func(t *testing.T) {
			c := NewClock()
			h := mk()
			workers := runtime.GOMAXPROCS(0)
			const per = 2000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						h.Append(uint64(i), uint64(w*per+i), c)
					}
				}(w)
			}
			wg.Wait()
			es := h.Entries(c)
			if len(es) != workers*per {
				t.Fatalf("lost entries: %d of %d", len(es), workers*per)
			}
			for i := 1; i < len(es); i++ {
				if es[i].Version < es[i-1].Version {
					t.Fatalf("history out of order at %d: %d < %d", i, es[i].Version, es[i-1].Version)
				}
			}
		})
	}
}

// TestConcurrentReadersAndWriters: finds run while appends proceed; any
// observed value must be one that was actually appended for a version <=
// the queried one.
func TestConcurrentReadersAndWriters(t *testing.T) {
	for name, mk := range variants(t) {
		t.Run(name, func(t *testing.T) {
			c := NewClock()
			h := mk()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // writer: version i holds value i*7
				defer wg.Done()
				for i := uint64(0); i < 20000; i++ {
					h.Append(i, i*7, c)
				}
			}()
			var rwg sync.WaitGroup
			for r := 0; r < 4; r++ {
				rwg.Add(1)
				go func(r int) {
					defer rwg.Done()
					rng := mt19937.New(uint64(r))
					for {
						select {
						case <-stop:
							return
						default:
						}
						v := rng.Uint64n(20000)
						if got, ok := h.Find(v, c); ok {
							// The rightmost finished entry at or below v is
							// some version w <= v holding w*7.
							if got%7 != 0 || got/7 > v {
								t.Errorf("Find(%d) = %d: not a valid prior value", v, got)
								return
							}
						}
					}
				}(r)
			}
			wg.Wait()
			close(stop)
			rwg.Wait()
			if got, ok := h.Find(19999, c); !ok || got != 19999*7 {
				t.Fatalf("final Find = %d,%v", got, ok)
			}
		})
	}
}

// TestPersistentRecoverScanAndPrune exercises the recovery primitives
// directly: after a crash, RecoverScan reports durable slots and Prune cuts
// the history at the requested point.
func TestPersistentRecoverScanAndPrune(t *testing.T) {
	a, err := pmem.New(16<<20, pmem.WithShadow())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	c := NewClock()
	h, err := NewPHistory(a, 42)
	if err != nil {
		t.Fatal(err)
	}
	h.SetPublished()
	for i := uint64(0); i < 10; i++ {
		if err := h.Append(a, i, i*100, c); err != nil {
			t.Fatal(err)
		}
	}
	head := h.Head
	a.Crash()
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}

	h2 := OpenPHistory(a, head, 0)
	if h2.Key(a) != 42 {
		t.Fatalf("recovered key = %d", h2.Key(a))
	}
	raw := h2.RecoverScan(a)
	complete := 0
	for _, r := range raw {
		if r.Complete() {
			complete++
		}
	}
	if complete != 10 {
		t.Fatalf("recovered %d complete slots, want 10 (all were persisted)", complete)
	}
	// simulate fc=7: keep 7 entries, prune the rest
	h2.Prune(a, 7)
	h3 := OpenPHistory(a, head, 7)
	if got := h3.Len(a, c2(7)); got != 7 {
		t.Fatalf("after prune Len = %d", got)
	}
	if v, ok := h3.Find(a, 6, c2(7)); !ok || v != 600 {
		t.Fatalf("after prune Find(6) = %d,%v", v, ok)
	}
	if v, ok := h3.Find(a, 9, c2(7)); !ok || v != 600 {
		// entries 7..9 pruned; version 9 now resolves to entry 6
		t.Fatalf("after prune Find(9) = %d,%v", v, ok)
	}
	// pruned slots must be durably zero: crash again and rescan
	a.Crash()
	raw = OpenPHistory(a, head, 0).RecoverScan(a)
	complete = 0
	for _, r := range raw {
		if r.Complete() {
			complete++
		}
	}
	if complete != 7 {
		t.Fatalf("after prune+crash %d complete slots, want 7", complete)
	}
}

// c2 builds a clock already advanced to seq (recovery state).
func c2(seq uint64) *Clock {
	c := NewClock()
	c.Reset(seq)
	return c
}

// TestPersistentCrashDropsUncommitted: entries whose seq persist did not
// complete are not Complete() after a crash.
func TestPersistentCrashMidAppend(t *testing.T) {
	a, _ := pmem.New(16<<20, pmem.WithShadow())
	defer a.Close()
	c := NewClock()
	h, _ := NewPHistory(a, 7)
	h.SetPublished()
	// Append normally: fully durable.
	if err := h.Append(a, 0, 11, c); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a torn append: entry data persisted, seq written but NOT
	// persisted (crash between the seq store and its Persist).
	ep, err := h.entryPtr(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.StoreUint64(ep, 5+1)
	a.StoreUint64(ep+8, 22)
	a.Persist(ep, 16)
	a.StoreUint64(ep+16, c.Next()) // no persist
	head := h.Head
	a.Crash()

	raw := OpenPHistory(a, head, 0).RecoverScan(a)
	if !raw[0].Complete() {
		t.Fatal("durable entry lost")
	}
	if raw[1].Complete() {
		t.Fatal("torn entry considered complete")
	}
	if raw[1].VersionPlus1 != 6 || raw[1].Value != 22 {
		t.Fatal("torn entry data should still be durable (it was persisted)")
	}
}

func TestFreeUnpublished(t *testing.T) {
	a, _ := pmem.New(1 << 20)
	defer a.Close()
	h, err := NewPHistory(a, 9)
	if err != nil {
		t.Fatal(err)
	}
	h.FreeUnpublished(a)
	// The freed header must be reusable.
	h2, err := NewPHistory(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Head != h.Head {
		t.Fatalf("freed header not reused: %d vs %d", h2.Head, h.Head)
	}
}

func BenchmarkEphemeralAppend(b *testing.B) {
	c := NewClock()
	h := &EHistory{}
	for i := 0; i < b.N; i++ {
		h.Append(uint64(i), uint64(i), c)
	}
}

func BenchmarkEphemeralFind(b *testing.B) {
	c := NewClock()
	h := &EHistory{}
	for i := uint64(0); i < 4096; i++ {
		h.Append(i, i, c)
	}
	rng := mt19937.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Find(rng.Uint64n(4096), c)
	}
}

func BenchmarkPersistentAppend(b *testing.B) {
	a, _ := pmem.New(1 << 30)
	defer a.Close()
	c := NewClock()
	h, _ := NewPHistory(a, 1)
	h.SetPublished()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Append(a, uint64(i), uint64(i), c); err != nil {
			b.Fatal(err)
		}
	}
}
