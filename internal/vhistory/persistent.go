package vhistory

import (
	"errors"
	"fmt"
	"sync/atomic"

	"mvkv/internal/pmem"
)

// Persistent history layout in the arena:
//
//	header: word 0            key (for integrity checks)
//	        word 1            floor: index of the oldest live slot (GC)
//	        words 2..41       segment pointers (the directory)
//	segment k: segSize(k) entries of 3 words each:
//	        word 0: version+1 (0 = entry not yet written)
//	        word 1: value
//	        word 2: commit seq (0 = not finished)
//
// Durability ordering per append (Algorithm 1 + recovery invariant):
// the entry's version/value words are persisted before its commit seq is
// claimed, and the seq word is persisted before the commit is announced to
// the clock. Hence at any crash point, seq != 0 durable implies the entry
// data is durable, and per-key commit numbers are strictly increasing in
// slot order — which is what the recovery procedure in package core relies
// on to cut each history at the globally contiguous finished prefix.
//
// The floor word is the version GC's only mutation of a live history:
// slots below it are dead — their entries were reclaimed below the tag
// watermark — and whole segments entirely below it are unlinked (directory
// word durably zeroed) and freed. Slot numbering stays absolute, so
// locate() and every surviving entry are untouched; advancing the floor is
// a single monotonic word persist, and either the old or the new value is
// a valid image at any crash point.
const (
	phKeyWord    = 0
	phFloorWord  = 1 // oldest live slot index (all slots below are reclaimed)
	phDirStart   = 2 // 40 words of segment pointers
	PHeaderBytes = (2 + maxSegments) * 8

	entryWords = 3
	EntryBytes = entryWords * 8
)

// PSegBytes returns the allocation size of persistent segment k.
func PSegBytes(k int) int64 { return int64(segSize(k)) * EntryBytes }

// PHistory is the ephemeral handle of one key's persistent version history:
// the persistent head pointer plus the volatile pending/tail counters
// (rebuilt on restart). Published gates the first commit until the key's
// (key, head) pair is durable in the key block chain, so that a committed
// sequence number never refers to an unreachable history (see DESIGN.md).
type PHistory struct {
	Head      pmem.Ptr
	pending   atomic.Uint64
	tail      atomic.Uint64
	published atomic.Bool
	firstVer  atomic.Uint64 // cached floor-slot version+1 (0 = not yet known)
	seg0      atomic.Uint64 // cached segment-0 pointer (reset when GC frees it)
	floor     atomic.Uint64 // cached copy of the persisted floor word
}

// NewPHistory allocates a persistent history header for key and returns its
// handle. The header is persisted; the caller must publish the head pointer
// in a durable structure (the key block chain) and then call SetPublished.
func NewPHistory(a *pmem.Arena, key uint64) (*PHistory, error) {
	head, err := a.Alloc(PHeaderBytes)
	if err != nil {
		return nil, err
	}
	a.StoreUint64(head+phKeyWord*8, key)
	a.Persist(head, PHeaderBytes)
	return &PHistory{Head: head}, nil
}

// NewPHistoryAt wraps a pre-allocated header block (from a batched
// allocation) as a fresh history for key. Nothing is persisted: the caller
// fences the header span (see HeaderSpan) before publishing the head
// pointer in the key block chain.
func NewPHistoryAt(a *pmem.Arena, head pmem.Ptr, key uint64) *PHistory {
	a.StoreUint64(head+phKeyWord*8, key)
	return &PHistory{Head: head}
}

// FreeUnpublished returns an unpublished history's storage to the arena.
// Used by the loser of a duplicate-key insert race.
func (h *PHistory) FreeUnpublished(a *pmem.Arena) {
	a.Free(h.Head, PHeaderBytes)
}

// OpenPHistory wraps an existing persistent head after restart; pending and
// tail are set to the recovered absolute slot count (see core's recovery),
// and the persisted floor is loaded into the handle's cache.
func OpenPHistory(a *pmem.Arena, head pmem.Ptr, recovered uint64) *PHistory {
	h := &PHistory{Head: head}
	h.pending.Store(recovered)
	h.tail.Store(recovered)
	h.published.Store(true)
	h.floor.Store(a.LoadUint64(head + phFloorWord*8))
	return h
}

// Key reads the key recorded in the header.
func (h *PHistory) Key(a *pmem.Arena) uint64 { return a.LoadUint64(h.Head + phKeyWord*8) }

// Floor reads the persisted floor: the absolute index of the oldest live
// slot. Slots below it were reclaimed by the version GC.
func (h *PHistory) Floor(a *pmem.Arena) uint64 {
	return a.LoadUint64(h.Head + phFloorWord*8)
}

// SetFloor durably advances the floor to the given absolute slot index and
// refreshes the handle caches. floor must point at a live, finished slot
// (the retained baseline entry) and never retreat. Only safe with readers
// and writers excluded (the GC pass holds the store's maintenance lock):
// the single monotonic word persist means any crash point leaves either the
// old or the new floor, both of which describe a valid image.
func (h *PHistory) SetFloor(a *pmem.Arena, floor uint64) {
	a.StoreUint64(h.Head+phFloorWord*8, floor)
	a.Persist(h.Head+phFloorWord*8, 8)
	h.floor.Store(floor)
	h.firstVer.Store(0) // the oldest live entry changed
}

// FreeLeadingSegments unlinks and frees every whole segment strictly below
// the floor (a segment is reclaimable when all its slots are dead). Each
// directory word is durably zeroed before its block goes to the free lists,
// so a crash can never leave a reachable pointer to recycled storage.
// Idempotent: segments a previous (possibly crashed) pass already unlinked
// are skipped. Only safe with readers and writers excluded.
func (h *PHistory) FreeLeadingSegments(a *pmem.Arena, floor uint64) (segs int, bytes int64) {
	for seg := 0; seg < maxSegments; seg++ {
		if segEnd(seg) > floor {
			break // segment still holds live slots
		}
		dw := h.dirWord(seg)
		base := a.LoadPtr(dw)
		if base == pmem.NullPtr {
			continue // already unlinked by an earlier pass
		}
		a.StorePtr(dw, pmem.NullPtr)
		a.Persist(dw, 8)
		a.Free(base, PSegBytes(seg))
		segs++
		bytes += PSegBytes(seg)
	}
	if segs > 0 {
		h.seg0.Store(0) // the cached segment-0 pointer may now be stale
	}
	return segs, bytes
}

// FloorCandidate returns the absolute slot of the newest finished entry
// whose version is strictly below w — the baseline the version GC retains:
// it serves every query at versions >= its own, so everything below it is
// unreachable from any tag >= w-1 and may be reclaimed. ok is false when
// the floor is already there (nothing to reclaim). Only meaningful on a
// quiesced history (the GC pass holds the store's maintenance lock).
func (h *PHistory) FloorCandidate(a *pmem.Arena, w uint64, c *Clock) (uint64, bool) {
	n := h.extend(a, MaxVersion, c)
	fl := h.floor.Load()
	lo, hi := fl, n
	for lo < hi {
		mid := (lo + hi) / 2
		// first slot with version >= w
		if a.LoadUint64(h.loadedEntryPtr(a, mid)) > w {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo <= fl+1 {
		return fl, false // floor already at (or adjacent to) the baseline
	}
	return lo - 1, true
}

// SetPublished marks the history reachable from durable state; appends wait
// for this before claiming commit numbers.
func (h *PHistory) SetPublished() { h.published.Store(true) }

func (h *PHistory) dirWord(seg int) pmem.Ptr {
	return h.Head + pmem.Ptr((phDirStart+seg)*8)
}

// segment returns (allocating if needed) the base pointer of segment i.
func (h *PHistory) segment(a *pmem.Arena, i int) (pmem.Ptr, error) {
	dw := h.dirWord(i)
	if p := a.LoadPtr(dw); p != pmem.NullPtr {
		return p, nil
	}
	fresh, err := a.Alloc(PSegBytes(i))
	if err != nil {
		return pmem.NullPtr, err
	}
	if a.CompareAndSwapPtr(dw, pmem.NullPtr, fresh) {
		a.Persist(dw, 8)
		return fresh, nil
	}
	a.Free(fresh, PSegBytes(i))
	return a.LoadPtr(dw), nil
}

// entryPtr returns the base pointer of the given slot, allocating its
// segment if needed.
func (h *PHistory) entryPtr(a *pmem.Arena, slot uint64) (pmem.Ptr, error) {
	if slot >= maxSlots {
		return pmem.NullPtr, ErrHistoryFull
	}
	seg, off := locate(slot)
	base, err := h.segment(a, seg)
	if err != nil {
		return pmem.NullPtr, err
	}
	return base + pmem.Ptr(off*EntryBytes), nil
}

// loadedEntryPtr is entryPtr for slots known to exist (readers). Nearly
// every history is short (one or two entries, as in the paper's
// workloads), so the first segment's pointer — immutable once linked — is
// cached in the handle to spare queries a directory load per probe.
func (h *PHistory) loadedEntryPtr(a *pmem.Arena, slot uint64) pmem.Ptr {
	seg, off := locate(slot)
	if seg == 0 {
		if base := h.seg0.Load(); base != 0 {
			return pmem.Ptr(base) + pmem.Ptr(off*EntryBytes)
		}
		base := a.LoadPtr(h.dirWord(0))
		h.seg0.Store(uint64(base))
		return base + pmem.Ptr(off*EntryBytes)
	}
	return a.LoadPtr(h.dirWord(seg)) + pmem.Ptr(off*EntryBytes)
}

// ErrSlotLeaked reports that a failed append claimed a slot it could not
// give back: a later appender had already claimed the next slot, so the
// history now has a hole no one will ever stage, and every appender behind
// it would spin forever on the missing version word. The store cannot
// repair this; callers must stop accepting writes (wedge).
var ErrSlotLeaked = errors.New("vhistory: failed append left an unreclaimable claimed slot")

// Append records (version, value) durably (Algorithm 1 insert over
// persistent memory). See EHistory.Append for the same-key ordering rules;
// additionally, the entry is persisted before its commit number is claimed
// and the commit number is persisted before being announced.
func (h *PHistory) Append(a *pmem.Arena, version, value uint64, c *Clock) error {
	slot := h.pending.Add(1) - 1
	ep, err := h.entryPtr(a, slot)
	if err != nil {
		// Roll the claim back so a failed allocation (arena exhaustion)
		// leaves no half-claimed slot behind; the history stays exactly as
		// it was and the caller may keep writing. The rollback loses only
		// when a concurrent appender already claimed the next slot.
		if h.pending.CompareAndSwap(slot+1, slot) {
			return err
		}
		return fmt.Errorf("%w: %w", ErrSlotLeaked, err)
	}
	a.StoreUint64(ep+8, value)
	// Predecessor ordering stops at the floor: slots below it are dead —
	// their segments may already be freed (directory word durably zero), so
	// probing slot-1 there would read through a wild pointer, and even a
	// still-linked dead slot carries a stale version that must not clamp a
	// fresh append (TruncateFrom may have legitimately moved the clock
	// below it). The floor cache is stable here because SetFloor runs only
	// under the store's exclusive maintenance lock, which excludes writers.
	fl := h.floor.Load()
	var prev pmem.Ptr
	if slot > fl {
		prev = h.loadedEntryPtr(a, slot-1)
		var s spin
		for {
			pv := a.LoadUint64(prev)
			if pv != 0 {
				if pv-1 > version {
					version = pv - 1
				}
				break
			}
			s.wait()
		}
	}
	a.StoreUint64(ep, version+1)
	a.Persist(ep, 16)
	var s spin
	for !h.published.Load() {
		s.wait()
	}
	if slot > fl {
		for a.LoadUint64(prev+16) == 0 {
			s.wait()
		}
	}
	seq := c.Next()
	a.StoreUint64(ep+16, seq)
	a.Persist(ep+16, 8)
	c.Commit(seq)
	return nil
}

// Remove appends a removal marker.
func (h *PHistory) Remove(a *pmem.Arena, version uint64, c *Clock) error {
	return h.Append(a, version, Marker, c)
}

// extend advances the lazy tail (queries only; see EHistory.extend).
func (h *PHistory) extend(a *pmem.Arena, version uint64, c *Clock) uint64 {
	t := h.tail.Load()
	grown := t
	for grown < h.pending.Load() {
		ep := h.loadedEntryPtr(a, grown)
		seq := a.LoadUint64(ep + 16)
		if seq == 0 || !c.Covered(seq) {
			break
		}
		if a.LoadUint64(ep)-1 > version {
			break
		}
		grown++
	}
	for grown > t {
		if h.tail.CompareAndSwap(t, grown) {
			break
		}
		t = h.tail.Load()
	}
	if grown > t {
		return grown
	}
	return t
}

// Find returns the key's value at the given snapshot version. The binary
// search runs over the live window [floor, tail): versions below the
// retained baseline entry were reclaimed by GC and read as absent.
func (h *PHistory) Find(a *pmem.Arena, version uint64, c *Clock) (value uint64, ok bool) {
	value, ok, _, _ = h.FindTail(a, version, c)
	return value, ok
}

// FindTail is Find plus the facts a current-version read cache needs:
// entVer is the matched entry's version and isTail reports whether the
// match was the newest entry of the whole chain at some instant during the
// call (no finished or in-flight append above it) — only such a match
// represents the key's current state and is safe to cache.
func (h *PHistory) FindTail(a *pmem.Arena, version uint64, c *Clock) (value uint64, ok bool, entVer uint64, isTail bool) {
	n := h.extend(a, version, c)
	fl := h.floor.Load()
	lo, hi := fl, n
	if lo > hi {
		lo = hi
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if a.LoadUint64(h.loadedEntryPtr(a, mid))-1 > version {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == fl || lo == 0 {
		return 0, false, 0, false
	}
	ep := h.loadedEntryPtr(a, lo-1)
	ev := a.LoadUint64(ep) - 1
	isTail = lo == n && h.pending.Load() == n
	if v := a.LoadUint64(ep + 8); v != Marker {
		return v, true, ev, isTail
	}
	return 0, false, ev, isTail
}

// Entries returns every live finished entry (extract_history). Entries
// below the GC floor are gone; the retained baseline entry comes first.
func (h *PHistory) Entries(a *pmem.Arena, c *Clock) []Entry {
	n := h.extend(a, MaxVersion, c)
	fl := h.floor.Load()
	if n <= fl {
		return nil
	}
	out := make([]Entry, 0, n-fl)
	for i := fl; i < n; i++ {
		ep := h.loadedEntryPtr(a, i)
		out = append(out, Entry{Version: a.LoadUint64(ep) - 1, Value: a.LoadUint64(ep + 8)})
	}
	return out
}

// Len returns the number of live finished, exposed entries.
func (h *PHistory) Len(a *pmem.Arena, c *Clock) int {
	n := h.extend(a, MaxVersion, c)
	if fl := h.floor.Load(); n > fl {
		return int(n - fl)
	}
	return 0
}

// FirstVersion returns the version of the key's oldest exposed entry. It
// implements the version-filtering extension the paper sketches as future
// work ("avoid traversing the whole set of keys even if they are not
// pertinent to the requested version"): a snapshot query at version v can
// skip this key entirely when FirstVersion > v, without touching the
// persistent history again — the value is immutable once written, so it is
// cached on first read.
func (h *PHistory) FirstVersion(a *pmem.Arena, c *Clock) (uint64, bool) {
	if v := h.firstVer.Load(); v != 0 {
		return v - 1, true
	}
	// The lazy tail may still be zero for a key only ever queried below
	// its first version, so peek the floor slot directly — it is eligible
	// once its commit is covered by the finished counter.
	fl := h.floor.Load()
	if h.pending.Load() <= fl {
		return 0, false
	}
	seg, off := locate(fl)
	base := a.LoadPtr(h.dirWord(seg))
	if base == pmem.NullPtr {
		return 0, false // segment still being linked by the appender
	}
	ep := base + pmem.Ptr(off*EntryBytes)
	if seq := a.LoadUint64(ep + 16); seq == 0 || !c.Covered(seq) {
		return 0, false
	}
	v := a.LoadUint64(ep)
	h.firstVer.Store(v)
	return v - 1, true
}

// LastVersion returns the version of the newest exposed entry, if any.
// After recovery this is the largest version the key durably recorded.
func (h *PHistory) LastVersion(a *pmem.Arena) (uint64, bool) {
	t := h.tail.Load()
	if t == 0 {
		return 0, false
	}
	return a.LoadUint64(h.loadedEntryPtr(a, t-1)) - 1, true
}

// CheckIntegrity validates the exposed portion of the history: versions
// non-decreasing, commit numbers strictly increasing and covered by fc,
// values present. Used by the store-level audit (mvkvctl verify).
func (h *PHistory) CheckIntegrity(a *pmem.Arena, fc uint64) error {
	n := h.tail.Load()
	if p := h.pending.Load(); n > p {
		return fmt.Errorf("vhistory: tail %d beyond pending %d", n, p)
	}
	fl := h.floor.Load()
	if n != 0 && n < fl {
		return fmt.Errorf("vhistory: tail %d below GC floor %d", n, fl)
	}
	prevVer, prevSeq := uint64(0), uint64(0)
	for i := fl; i < n; i++ {
		ep := h.loadedEntryPtr(a, i)
		verPlus := a.LoadUint64(ep)
		seq := a.LoadUint64(ep + 16)
		if verPlus == 0 {
			return fmt.Errorf("vhistory: exposed slot %d has no version", i)
		}
		if seq == 0 {
			return fmt.Errorf("vhistory: exposed slot %d is not finished", i)
		}
		if seq > fc {
			return fmt.Errorf("vhistory: exposed slot %d commit %d beyond fc %d", i, seq, fc)
		}
		if i > fl {
			if verPlus-1 < prevVer {
				return fmt.Errorf("vhistory: slot %d version %d below predecessor %d", i, verPlus-1, prevVer)
			}
			if seq <= prevSeq {
				return fmt.Errorf("vhistory: slot %d commit %d not above predecessor %d", i, seq, prevSeq)
			}
		}
		prevVer, prevSeq = verPlus-1, seq
	}
	return nil
}

// RecoverScan walks every live slot of every reachable segment after a
// restart and returns the per-slot raw contents, in slot order, starting at
// the persisted GC floor — the first element describes absolute slot
// Floor(a); callers needing absolute indices add that base. Segments wholly
// below the floor may have been unlinked and freed by GC, so the walk must
// never dereference them; it starts at the floor's segment. It is phase one
// of crash recovery: the caller combines the commit numbers of all keys to
// compute the durable prefix fc, then calls Prune. Slots are reported even
// when partially written (holes), as pruning decisions need the full
// picture.
func (h *PHistory) RecoverScan(a *pmem.Arena) []RawSlot {
	fl := a.LoadUint64(h.Head + phFloorWord*8)
	flSeg, flOff := locate(fl)
	var out []RawSlot
	for seg := flSeg; seg < maxSegments; seg++ {
		base := a.LoadPtr(h.dirWord(seg))
		if base == pmem.NullPtr {
			break
		}
		n := segSize(seg)
		off := uint64(0)
		if seg == flSeg {
			off = flOff
		}
		for ; off < n; off++ {
			ep := base + pmem.Ptr(off*EntryBytes)
			out = append(out, RawSlot{
				VersionPlus1: a.LoadUint64(ep),
				Value:        a.LoadUint64(ep + 8),
				Seq:          a.LoadUint64(ep + 16),
			})
		}
	}
	return out
}

// RawSlot is a raw history slot as found during recovery.
type RawSlot struct {
	VersionPlus1 uint64
	Value        uint64
	Seq          uint64
}

// Complete reports whether the slot holds a finished entry.
func (r RawSlot) Complete() bool { return r.VersionPlus1 != 0 && r.Seq != 0 }

// Prune durably zeroes every slot from keep onwards (in every reachable
// segment) and resets the volatile counters to keep. Phase two of recovery:
// keep is the absolute slot count of the durable prefix the caller
// computed; it must be >= the persisted floor (the floor's baseline entry
// is part of every durable image). Segments below the floor's segment may
// have been freed by GC and are never touched.
func (h *PHistory) Prune(a *pmem.Arena, keep uint64) {
	fl := a.LoadUint64(h.Head + phFloorWord*8)
	flSeg, _ := locate(fl)
	slot := segStart(flSeg)
	for seg := flSeg; seg < maxSegments; seg++ {
		base := a.LoadPtr(h.dirWord(seg))
		if base == pmem.NullPtr {
			break
		}
		n := segSize(seg)
		dirtyFrom := int64(-1)
		for off := uint64(0); off < n; off, slot = off+1, slot+1 {
			if slot < keep {
				continue
			}
			ep := base + pmem.Ptr(off*EntryBytes)
			if a.LoadUint64(ep) != 0 || a.LoadUint64(ep+8) != 0 || a.LoadUint64(ep+16) != 0 {
				a.ZeroWords(ep, entryWords)
				if dirtyFrom < 0 {
					dirtyFrom = int64(off)
				}
			}
		}
		if dirtyFrom >= 0 {
			from := base + pmem.Ptr(uint64(dirtyFrom)*EntryBytes)
			a.Persist(from, int64(n-uint64(dirtyFrom))*EntryBytes)
		}
	}
	h.pending.Store(keep)
	h.tail.Store(keep)
	h.published.Store(true)
	h.floor.Store(fl)
	// The cached floor-slot version may describe a zeroed slot now
	// (keep == floor); drop it so FirstVersion re-reads the arena.
	h.firstVer.Store(0)
}

// SetSlotSeq durably overwrites the commit number of an existing slot.
// Used by version truncation (core.Store.TruncateFrom) to re-sequence the
// surviving entries into a gap-free global order: truncation removes
// entries from the middle of the commit sequence, and a later recovery
// would otherwise cut every entry above the first gap. Only safe on a
// quiesced store (no concurrent appends or queries).
func (h *PHistory) SetSlotSeq(a *pmem.Arena, slot, seq uint64) {
	ep := h.loadedEntryPtr(a, slot)
	a.StoreUint64(ep+16, seq)
	a.Persist(ep+16, 8)
}
