package vhistory

import (
	"errors"
	"math/bits"
)

// Histories grow as a segmented vector: a fixed directory of segments whose
// sizes double (2, 4, 8, ...) up to a cap, after which every further
// segment has the fixed cap size. A claimed slot's location never changes,
// so appends are lock-free and readers are never invalidated by
// reallocation — the property the paper needs from its "lock-free vector
// with binary search support".
//
// The cap is what makes the version GC's reclamation effective under
// sustained overwrites: with purely doubling segments a fixed key set
// written forever always lives in an ever-larger tail segment, so the heap
// grows linearly no matter how much the GC frees (the freed small segments
// can never serve the next doubling). Capped, the steady state allocates
// and frees nothing but cap-sized segments, which recycle perfectly
// through the arena's size-bucketed free lists — the heap stops growing.
//
// The price is a finite per-key version capacity, maxSlots (~112k with the
// constants below), far beyond any workload in this repo; an append past
// it fails cleanly with ErrHistoryFull, and core.Store.CompactTo renumbers
// slots from zero, so compaction is the overflow escape hatch. See
// DESIGN.md for the deviation note.
const (
	segBase     = 2  // entries in segment 0
	capSeg      = 10 // last doubling segment; later segments stay this size
	maxSegments = 64

	capSize     = segBase << capSeg        // entries per capped segment (2048)
	capShift    = capSeg + 1               // log2(capSize)
	capBoundary = 1<<(capSeg+2) - 2        // first slot of the capped zone
)

// maxSlots is the per-key version capacity of the directory.
const maxSlots = capBoundary + uint64(maxSegments-capSeg-1)*capSize

// ErrHistoryFull reports an append past a key's slot capacity. The history
// and every committed entry are untouched; compact the store (CompactTo)
// to renumber the key's slots from zero.
var ErrHistoryFull = errors.New("vhistory: key version history is full")

// locate maps a slot index to its (segment, offset within segment).
func locate(slot uint64) (seg int, off uint64) {
	if slot < capBoundary {
		// Doubling zone: segment k holds slots [2^(k+1)-2, 2^(k+2)-2),
		// so slot+2 is in [2^(k+1), 2^(k+2)) and k = bitlen(slot+2) - 2.
		s := slot + segBase
		seg = bits.Len64(s) - 2
		off = s - 1<<(uint(seg)+1)
		return seg, off
	}
	rest := slot - capBoundary
	return capSeg + 1 + int(rest>>capShift), rest & (capSize - 1)
}

// segSize returns the number of entries in segment k.
func segSize(seg int) uint64 {
	if seg <= capSeg {
		return segBase << uint(seg)
	}
	return capSize
}

// segStart returns the absolute index of segment k's first slot.
func segStart(seg int) uint64 {
	if seg <= capSeg {
		return 1<<(uint(seg)+1) - 2
	}
	return capBoundary + uint64(seg-capSeg-1)*capSize
}

// segEnd returns one past the absolute index of segment k's last slot.
func segEnd(seg int) uint64 { return segStart(seg) + segSize(seg) }

// Entry is one finished element of a version history: the key held Value
// from Version onwards (until the next entry). Removed marks removal
// entries (Value == Marker).
type Entry struct {
	Version uint64
	Value   uint64
}

// Removed reports whether the entry records a removal.
func (e Entry) Removed() bool { return e.Value == Marker }
