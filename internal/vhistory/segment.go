package vhistory

import "math/bits"

// Histories grow as a segmented vector: a fixed directory of segments whose
// sizes double (2, 4, 8, ...). A claimed slot's location never changes, so
// appends are lock-free and readers are never invalidated by reallocation —
// the property the paper needs from its "lock-free vector with binary search
// support". maxSegments = 40 covers ~2^42 entries per key.
const (
	segBase     = 2 // entries in segment 0
	maxSegments = 40
)

// locate maps a slot index to its (segment, offset within segment).
func locate(slot uint64) (seg int, off uint64) {
	// Segment k holds slots [2^(k+1)-2, 2^(k+2)-2), so slot+2 is in
	// [2^(k+1), 2^(k+2)) and k = bitlen(slot+2) - 2.
	s := slot + segBase
	seg = bits.Len64(s) - 2
	off = s - 1<<(uint(seg)+1)
	return seg, off
}

// segSize returns the number of entries in segment k.
func segSize(seg int) uint64 { return segBase << uint(seg) }

// Entry is one finished element of a version history: the key held Value
// from Version onwards (until the next entry). Removed marks removal
// entries (Value == Marker).
type Entry struct {
	Version uint64
	Value   uint64
}

// Removed reports whether the entry records a removal.
func (e Entry) Removed() bool { return e.Value == Marker }
