// Package workload pre-generates benchmark inputs following the paper's
// methodology (Section V-C): large numbers of tiny integer key-value pairs,
// produced by a Mersenne Twister with fixed seeds so every run (and every
// compared approach) sees the identical reproducible scenario, and cached
// before timing starts so input generation never pollutes measurements.
package workload

import (
	"mvkv/internal/mt19937"
)

// Workload is a pre-generated set of unique keys with values.
type Workload struct {
	Keys   []uint64
	Values []uint64
}

// Generate pre-generates n key-value pairs with unique keys (the paper's
// worst case for inserts: every insert instantiates a new key). The same
// (n, seed) always yields the same workload.
func Generate(n int, seed uint64) *Workload {
	rng := mt19937.New(seed)
	keys := make([]uint64, 0, n)
	seen := make(map[uint64]struct{}, n)
	for len(keys) < n {
		k := rng.Uint64()
		if k == 0 || k == ^uint64(0) {
			continue // reserve the extremes
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() &^ (1 << 63) // keep clear of the marker
	}
	return &Workload{Keys: keys, Values: vals}
}

// Shuffled returns a deterministic random permutation of the keys (the
// paper's removal phase: "a random shuffling of the keys").
func (w *Workload) Shuffled(seed uint64) []uint64 {
	out := make([]uint64, len(w.Keys))
	copy(out, w.Keys)
	mt19937.New(seed).Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Split partitions items into t contiguous, nearly equal chunks ("evenly
// distribute them to T threads").
func Split[T any](items []T, t int) [][]T {
	if t < 1 {
		t = 1
	}
	out := make([][]T, t)
	for i := 0; i < t; i++ {
		lo, hi := i*len(items)/t, (i+1)*len(items)/t
		out[i] = items[lo:hi]
	}
	return out
}

// QueryMix pre-generates q random (key index, version) query pairs over a
// key population of size p and versions below maxVer, one deterministic
// stream per thread seed.
func QueryMix(q, p int, maxVer uint64, seed uint64) (idx []int, vers []uint64) {
	rng := mt19937.New(seed)
	idx = make([]int, q)
	vers = make([]uint64, q)
	for i := range idx {
		idx[i] = int(rng.Uint64n(uint64(p)))
		if maxVer == 0 {
			vers[i] = 0
		} else {
			vers[i] = rng.Uint64n(maxVer)
		}
	}
	return idx, vers
}
