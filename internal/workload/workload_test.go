package workload

import (
	"testing"
	"testing/quick"
)

func TestGenerateUniqueAndDeterministic(t *testing.T) {
	a := Generate(5000, 42)
	b := Generate(5000, 42)
	if len(a.Keys) != 5000 || len(a.Values) != 5000 {
		t.Fatalf("sizes: %d keys %d values", len(a.Keys), len(a.Values))
	}
	seen := map[uint64]bool{}
	for i, k := range a.Keys {
		if k != b.Keys[i] || a.Values[i] != b.Values[i] {
			t.Fatal("not deterministic")
		}
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		if k == 0 || k == ^uint64(0) {
			t.Fatalf("reserved key generated: %d", k)
		}
		if a.Values[i] == ^uint64(0) {
			t.Fatal("marker value generated")
		}
		seen[k] = true
	}
	c := Generate(5000, 43)
	same := 0
	for i := range c.Keys {
		if c.Keys[i] == a.Keys[i] {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d identical keys", same)
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	w := Generate(1000, 7)
	s := w.Shuffled(8)
	if len(s) != len(w.Keys) {
		t.Fatal("length changed")
	}
	set := map[uint64]bool{}
	for _, k := range w.Keys {
		set[k] = true
	}
	moved := 0
	for i, k := range s {
		if !set[k] {
			t.Fatalf("foreign key %d", k)
		}
		if k != w.Keys[i] {
			moved++
		}
	}
	if moved < len(s)/2 {
		t.Fatalf("only %d keys moved", moved)
	}
	// original untouched
	again := Generate(1000, 7)
	for i := range again.Keys {
		if again.Keys[i] != w.Keys[i] {
			t.Fatal("Shuffled mutated the workload")
		}
	}
}

func TestSplitCoversExactly(t *testing.T) {
	f := func(n uint16, t8 uint8) bool {
		items := make([]int, int(n)%1000)
		for i := range items {
			items[i] = i
		}
		parts := Split(items, int(t8)%17)
		idx := 0
		for _, p := range parts {
			for _, v := range p {
				if v != idx {
					return false
				}
				idx++
			}
		}
		return idx == len(items)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// sizes balanced within 1
	parts := Split(make([]int, 100), 7)
	if len(parts) != 7 {
		t.Fatalf("%d parts", len(parts))
	}
	for _, p := range parts {
		if len(p) < 100/7 || len(p) > 100/7+1 {
			t.Fatalf("unbalanced part of %d", len(p))
		}
	}
	// degenerate thread counts
	if got := Split([]int{1, 2}, 0); len(got) != 1 || len(got[0]) != 2 {
		t.Fatal("Split with t=0 broken")
	}
}

func TestQueryMixBounds(t *testing.T) {
	idx, vers := QueryMix(1000, 50, 20, 9)
	if len(idx) != 1000 || len(vers) != 1000 {
		t.Fatal("sizes wrong")
	}
	for i := range idx {
		if idx[i] < 0 || idx[i] >= 50 {
			t.Fatalf("index out of range: %d", idx[i])
		}
		if vers[i] >= 20 {
			t.Fatalf("version out of range: %d", vers[i])
		}
	}
	// deterministic per seed
	idx2, vers2 := QueryMix(1000, 50, 20, 9)
	for i := range idx {
		if idx[i] != idx2[i] || vers[i] != vers2[i] {
			t.Fatal("not deterministic")
		}
	}
	// maxVer == 0 means version 0 everywhere
	_, v0 := QueryMix(10, 5, 0, 1)
	for _, v := range v0 {
		if v != 0 {
			t.Fatal("maxVer=0 produced nonzero version")
		}
	}
}
