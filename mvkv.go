// Package mvkv is a scalable multi-versioning ordered key-value store with
// (emulated) persistent memory support — a from-scratch Go reproduction of
// Bogdan Nicolae, "Scalable Multi-Versioning Ordered Key-Value Stores with
// Persistent Memory Support", IPDPS 2022.
//
// The primary store is PSkipList (NewPSkipList/OpenPSkipList): a hybrid of
// a lock-free ephemeral skip-list index over a compact persistent-memory
// representation — per-key version histories with lazy tails, a persistent
// key block chain enabling parallel index reconstruction on restart, and a
// global commit clock that keeps concurrent snapshots prefix-consistent.
//
// The package also exposes the paper's baselines (ESkipList, LockedMap and
// the SQLite-style embedded engines) behind the same Store interface, and a
// distributed layer that partitions a store across ranks with MPI-style
// collectives and hierarchic multi-threaded snapshot merging.
//
// Quick start:
//
//	s, err := mvkv.NewPSkipList(mvkv.Options{})
//	if err != nil { ... }
//	defer s.Close()
//	s.Insert(42, 1000)
//	v0 := s.Tag()                  // seal snapshot 0
//	s.Insert(42, 2000)
//	v1 := s.Tag()                  // seal snapshot 1
//	old, _ := s.Find(42, v0)       // 1000 — time travel
//	cur, _ := s.Find(42, v1)       // 2000
//	pairs := s.ExtractSnapshot(v1) // the full sorted snapshot
//	log := s.ExtractHistory(42)    // the key's change history
package mvkv

import (
	"fmt"
	"time"

	"mvkv/internal/blob"
	"mvkv/internal/cluster"
	"mvkv/internal/core"
	"mvkv/internal/dist"
	"mvkv/internal/eskiplist"
	"mvkv/internal/kv"
	"mvkv/internal/kvnet"
	"mvkv/internal/lockedmap"
	"mvkv/internal/sqlkv"
)

// Store is the multi-version ordered dictionary API (Table 1 of the paper):
// Insert, Remove, Find(key, version), Tag, ExtractSnapshot(version) and
// ExtractHistory(key). All implementations returned by this package are
// safe for concurrent use.
type Store = kv.Store

// BulkStore is the optional batched extension of Store: stores that
// implement it apply a whole batch with coalesced durability fences (the
// PSkipList), a single wire frame (the TCP client), or one scatter round
// (the cluster store). Use the package-level InsertBatch/FindBatch helpers,
// which fall back to the equivalent single-op loop on any other Store.
type BulkStore = kv.BulkStore

// InsertBatch records every pair, in order, through s's bulk path when it
// has one and an Insert loop otherwise.
func InsertBatch(s Store, pairs []KV) error { return kv.InsertBatch(s, pairs) }

// FindBatch answers Find(keys[i], versions[i]) for every i through s's bulk
// path when it has one and a Find loop otherwise.
func FindBatch(s Store, keys, versions []uint64) (values []uint64, found []bool) {
	return kv.FindBatch(s, keys, versions)
}

// SnapshotStreamer is the optional streaming-extraction capability: stores
// that implement it deliver a snapshot or range as a sequence of bounded,
// key-ordered chunks instead of one materialized slice (the PSkipList
// overlaps sharded extraction with delivery; the TCP client never holds
// more than one wire chunk). Use the package-level StreamSnapshot /
// StreamRange helpers, which fall back to extract-then-slice on any other
// Store.
type SnapshotStreamer = kv.SnapshotStreamer

// StreamSnapshot delivers the sorted snapshot at version to emit in bounded
// key-ordered chunks, through s's streaming path when it has one. An emit
// error aborts the stream and is returned verbatim.
func StreamSnapshot(s Store, version uint64, emit func(pairs []KV) error) error {
	return kv.StreamSnapshot(s, version, emit)
}

// StreamRange is StreamSnapshot bounded to lo <= key <= hi.
func StreamRange(s Store, lo, hi, version uint64, emit func(pairs []KV) error) error {
	return kv.StreamRange(s, lo, hi, version, emit)
}

// KV is one key-value pair of a snapshot.
type KV = kv.KV

// Event is one entry of a key's history.
type Event = kv.Event

// Marker is the reserved removal marker; it is not a legal Insert value.
const Marker = kv.Marker

// Options configures a PSkipList store.
type Options struct {
	// PoolBytes is the persistent pool capacity (default 256 MiB). The pool
	// is fixed-size, like a PMDK pool: size it for the expected data.
	PoolBytes int64
	// Path places the pool in a memory-mapped file that survives process
	// restarts (Linux). Empty means an in-memory pool.
	Path string
	// PersistLatency injects an emulated persistence cost per flushed
	// cache line, for studying persistent-memory behaviour.
	PersistLatency time.Duration
	// RebuildThreads is the index-reconstruction parallelism used by
	// OpenPSkipList (default: GOMAXPROCS).
	RebuildThreads int
	// ExtractThreads is the snapshot-extraction parallelism: ExtractSnapshot
	// and ExtractRange shard the key space over this many workers (default:
	// GOMAXPROCS). The result is byte-identical to a sequential walk.
	ExtractThreads int
	// GroupCommit enables the asynchronous group-commit write pipeline:
	// concurrent Insert/Remove/InsertBatch calls are coalesced by a
	// dispatcher into shared batched-append runs whose persist fences are
	// merged, amortizing the persistence cost across uncoordinated
	// writers. Per-call semantics are unchanged (a call returns only once
	// its entries are durable). Most valuable with many concurrent
	// writers or a nonzero PersistLatency.
	GroupCommit bool
	// GroupCommitMaxRun caps the pairs coalesced into one run (default
	// 512); GroupCommitFlushInterval optionally waits that long for more
	// writers before flushing a non-full run (default 0: flush greedily).
	GroupCommitMaxRun        int
	GroupCommitFlushInterval time.Duration
	// GCInterval, when positive, runs the tag-watermark version GC
	// periodically in the background: version-chain entries older than the
	// oldest pinned tag (see AcquireTag) are reclaimed into the pool's
	// free lists, bounding memory under sustained overwrites. Zero leaves
	// collection to explicit GC calls.
	GCInterval time.Duration
	// HotCacheSize sets the number of buckets in the hot-key read cache
	// that short-circuits current-version Finds under skewed traffic
	// (default 4096, rounded up to a power of two). DisableHotCache turns
	// the cache off entirely (reads always walk the authoritative index).
	HotCacheSize    int
	DisableHotCache bool
}

func (o Options) core() core.Options {
	return core.Options{
		ArenaBytes:               o.PoolBytes,
		Path:                     o.Path,
		PersistLatency:           o.PersistLatency,
		RebuildThreads:           o.RebuildThreads,
		ExtractThreads:           o.ExtractThreads,
		GroupCommit:              o.GroupCommit,
		GroupCommitMaxRun:        o.GroupCommitMaxRun,
		GroupCommitFlushInterval: o.GroupCommitFlushInterval,
		GCInterval:               o.GCInterval,
		HotCacheSize:             o.HotCacheSize,
		DisableHotCache:          o.DisableHotCache,
	}
}

// NewPSkipList creates a fresh PSkipList store, the paper's proposal.
func NewPSkipList(o Options) (Store, error) { return core.Create(o.core()) }

// OpenPSkipList reopens a file-backed PSkipList store created with
// Options.Path, running crash recovery and parallel index reconstruction.
func OpenPSkipList(o Options) (Store, error) { return core.Open(o.core()) }

// NewESkipList creates the ephemeral skip-list store: every PSkipList
// optimization, no persistence — the paper's performance upper bound.
func NewESkipList() Store { return eskiplist.New() }

// NewLockedMap creates the locked red-black-tree baseline.
func NewLockedMap() Store { return lockedmap.New() }

// NewSQLiteReg creates the persistent embedded-DB-engine baseline (pager +
// B+-tree + WAL, per-connection caches). path may be empty for an
// in-memory backing file.
func NewSQLiteReg(path string) (Store, error) {
	return sqlkv.Open(sqlkv.Options{Mode: sqlkv.ModeReg, Path: path})
}

// NewSQLiteMem creates the non-persistent embedded-DB-engine baseline with
// one shared, latched page cache.
func NewSQLiteMem() (Store, error) {
	return sqlkv.Open(sqlkv.Options{Mode: sqlkv.ModeMem})
}

// ---- snapshot pinning and version GC ----

// Pinner is the optional snapshot-pinning capability: AcquireTag seals the
// current version like Tag but also pins it, protecting every version from
// the tag onward from the version GC until ReleaseTag. The PSkipList, the
// TCP client, and the cluster store all implement it.
type Pinner = kv.Pinner

// Collector is the optional version-GC capability: GC runs one
// reclamation pass and reports what it freed.
type Collector = kv.Collector

// GCResult describes one GC pass. Supported is false when the store has no
// collector (the pass was a no-op).
type GCResult = kv.GCResult

// AcquireTag seals and pins the current version of s. On stores without a
// pin table it degrades to a plain Tag (the snapshot stays exact because
// nothing is ever reclaimed there).
func AcquireTag(s Store) uint64 { return kv.AcquireTag(s) }

// ReleaseTag drops a pin taken with AcquireTag, allowing later GC passes
// to reclaim versions below the next-oldest pin.
func ReleaseTag(s Store, tag uint64) error { return kv.ReleaseTag(s, tag) }

// GC runs one version-GC pass on s, reclaiming version-chain entries older
// than the oldest pinned tag into the pool's free lists. Stores without a
// collector report Supported == false.
func GC(s Store) (GCResult, error) { return kv.GC(s) }

// ---- transactions ----

// Txn is an optimistic multi-key transaction over any Store: Begin pins a
// read snapshot, Get/Set/Delete read through it and buffer writes, Commit
// applies the whole write set atomically after a first-committer-wins
// conflict check (ErrConflict on abort) and returns the commit timestamp.
type Txn = kv.Txn

// ErrConflict is the sentinel every transaction-conflict abort matches via
// errors.Is; the concrete *ConflictError names the losing key.
var ErrConflict = kv.ErrConflict

// ErrTxnDone is returned by Txn methods after Commit or Abort.
var ErrTxnDone = kv.ErrTxnDone

// ConflictError reports which write-set key lost the first-committer-wins
// race, its newest committed version, and the transaction's read timestamp.
type ConflictError = kv.ConflictError

// TxnCommitter is the optional transactional-commit capability (the
// PSkipList, the TCP client, and the cluster store implement it natively;
// CommitWrites degrades gracefully on the rest).
type TxnCommitter = kv.TxnCommitter

// Begin starts a transaction on s reading at a freshly pinned snapshot.
func Begin(s Store) *Txn { return kv.Begin(s) }

// CommitWrites commits a prepared write set against s in one call: conflict
// check against readTS, atomic apply, version seal. Most callers want the
// Txn API; this is the building block it rides.
func CommitWrites(s Store, readTS uint64, writes []KV) (uint64, error) {
	return kv.CommitWrites(s, readTS, writes)
}

// CompactPSkipList writes a compacted copy of a PSkipList store into a
// fresh pool described by o, forgetting versions older than keepSince (each
// key keeps its state as of keepSince plus all later changes). Queries at
// versions >= keepSince are answered identically by the returned store.
// The source must be quiescent (no concurrent writers) and is left
// untouched — crash-safe by construction, like an LSM compaction.
func CompactPSkipList(s Store, o Options, keepSince uint64) (Store, error) {
	cs, ok := s.(*core.Store)
	if !ok {
		return nil, fmt.Errorf("mvkv: CompactPSkipList requires a PSkipList store, got %T", s)
	}
	return cs.CompactTo(o.core(), keepSince)
}

// ---- blob values ----

// BlobStore layers []byte values over a PSkipList store: blobs live once
// in the persistent pool and snapshots share unchanged ones, serving the
// paper's motivating (id, tensor) and metadata workloads.
type BlobStore = blob.Store

// BlobPair is one key-blob pair of a snapshot.
type BlobPair = blob.Pair

// NewBlobStore creates a fresh blob-valued PSkipList store.
func NewBlobStore(o Options) (*BlobStore, error) {
	inner, err := core.Create(o.core())
	if err != nil {
		return nil, err
	}
	return blob.Wrap(inner), nil
}

// OpenBlobStore reopens a file-backed blob store created with Options.Path.
func OpenBlobStore(o Options) (*BlobStore, error) {
	inner, err := core.Open(o.core())
	if err != nil {
		return nil, err
	}
	return blob.Wrap(inner), nil
}

// ---- network service ----

// ServerOptions configures the network server's per-connection deadlines
// and its pipelined-connection policy (DisablePipeline, PipelineWorkers);
// see kvnet.ServerOptions.
type ServerOptions = kvnet.ServerOptions

// ClientOptions configures the network client's pool size, deadlines,
// retry policy, and request pipelining (Pipeline multiplexes many in-flight
// calls per connection, bounded by MaxInFlight, with automatic fallback
// against servers that predate the feature); see kvnet.Options.
type ClientOptions = kvnet.Options

// ServeStore exposes any Store over TCP (see cmd/mvkvd for the daemon
// form). The returned server is stopped with Close; the store stays open.
func ServeStore(s Store, addr string) (*kvnet.Server, error) {
	return kvnet.Serve(s, addr)
}

// ServeStoreOptions is ServeStore with explicit I/O deadlines.
func ServeStoreOptions(s Store, addr string, o ServerOptions) (*kvnet.Server, error) {
	return kvnet.ServeOptions(s, addr, o)
}

// DialStore connects to a served store; the returned client is itself a
// Store, so remote and local stores are interchangeable. maxConns bounds
// the client's connection pool (0 = default).
func DialStore(addr string, maxConns int) (Store, error) {
	return kvnet.Dial(addr, maxConns)
}

// DialStoreOptions is DialStore with explicit deadlines and retry policy.
// The returned client transparently retries idempotent operations over
// fresh connections with exponential backoff; mutations are never retried
// once their request hit the wire (kvnet.ErrUnknownOutcome reports the
// ambiguous case through the error-aware methods).
func DialStoreOptions(addr string, o ClientOptions) (Store, error) {
	return kvnet.DialOptions(addr, o)
}

// ---- distributed layer ----

// Comm is an MPI-style communicator for one rank.
type Comm = cluster.Comm

// NetModel injects per-message latency and bandwidth costs into an
// in-process cluster, restoring realistic collective behaviour at scale.
type NetModel = cluster.NetModel

// DistService partitions a store across the ranks of a communicator and
// serves distributed find and snapshot-extraction queries (Section V-H of
// the paper).
type DistService = dist.Service

// NewDistService wraps this rank's communicator and local partition store.
// mergeThreads configures the multi-threaded merge used by OptMerge.
func NewDistService(c *Comm, local Store, mergeThreads int) *DistService {
	return dist.New(c, local, mergeThreads)
}

// ClusterStore drives an entire partitioned cluster through the Store
// interface from rank 0: writes are routed point-to-point to owner ranks,
// finds run as broadcast+reduce collectives, snapshots via the
// recursive-doubling merge. Worker ranks must be inside
// DistService.ServeAll.
type ClusterStore = dist.ClusterStore

// NewClusterStore wraps rank 0's distributed service as a Store.
func NewClusterStore(svc *DistService) *ClusterStore { return dist.NewClusterStore(svc) }

// PartitionOwner maps a key to the rank owning it.
func PartitionOwner(key uint64, ranks int) int { return dist.Owner(key, ranks) }

// RunLocalCluster runs fn on `ranks` in-process ranks connected by a
// fabric with the given cost model; it returns the first rank error.
func RunLocalCluster(ranks int, model NetModel, fn func(c *Comm) error) error {
	return cluster.RunLocal(ranks, model, fn)
}

// ---- fault tolerance ----

// FTOptions bounds the distributed protocol's failure handling: OpTimeout
// is the per-collective deadline after which unresponsive ranks are marked
// down, ProbeBackoff the interval between reprobes of a down rank.
type FTOptions = dist.FTOptions

// NewDistServiceOptions is NewDistService with explicit fault-tolerance
// bounds. Workers restarted after a crash call DistService.Rejoin (with the
// CoveredTo their recovery reported) before re-entering ServeAll; rank 0
// drives pending rejoins with DistService.Heal.
func NewDistServiceOptions(c *Comm, local Store, mergeThreads int, o FTOptions) *DistService {
	return dist.NewOptions(c, local, mergeThreads, o)
}

// ErrRankDown reports an operation that needed a rank currently marked
// down. Match with errors.As; operations fail within FTOptions.OpTimeout
// instead of hanging.
type ErrRankDown = cluster.ErrRankDown

// PartialResultError accompanies best-effort collective results (snapshot
// extraction, LenSum) assembled while some ranks were down; Missing lists
// the unavailable partitions.
type PartialResultError = dist.PartialResultError

// PartialBatchError reports a cluster batch insert that landed on some
// partitions but not others: Applied counts per rank, Failed maps rank to
// cause.
type PartialBatchError = dist.PartialBatchError

// TxnAbortError reports a distributed transaction commit that failed in
// prepare (clean abort, nothing applied) or apply (partial: ranks outside
// the maps committed their shares). Match with errors.As.
type TxnAbortError = dist.TxnAbortError
