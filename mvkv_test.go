package mvkv

import (
	"path/filepath"
	"runtime"
	"sort"
	"testing"
)

// TestFacadeDocExample mirrors the package documentation example.
func TestFacadeDocExample(t *testing.T) {
	s, err := NewPSkipList(Options{PoolBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Insert(42, 1000)
	v0 := s.Tag()
	s.Insert(42, 2000)
	v1 := s.Tag()
	if old, _ := s.Find(42, v0); old != 1000 {
		t.Fatalf("Find at v0 = %d", old)
	}
	if cur, _ := s.Find(42, v1); cur != 2000 {
		t.Fatalf("Find at v1 = %d", cur)
	}
	if snap := s.ExtractSnapshot(v1); len(snap) != 1 || snap[0].Value != 2000 {
		t.Fatalf("snapshot = %v", snap)
	}
	if log := s.ExtractHistory(42); len(log) != 2 {
		t.Fatalf("history = %v", log)
	}
}

func TestAllConstructors(t *testing.T) {
	mk := map[string]func() (Store, error){
		"pskiplist": func() (Store, error) { return NewPSkipList(Options{PoolBytes: 16 << 20}) },
		"eskiplist": func() (Store, error) { return NewESkipList(), nil },
		"lockedmap": func() (Store, error) { return NewLockedMap(), nil },
		"sqlitereg": func() (Store, error) { return NewSQLiteReg("") },
		"sqlitemem": func() (Store, error) { return NewSQLiteMem() },
	}
	for name, f := range mk {
		s, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Insert(7, 70); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v := s.Tag()
		if got, ok := s.Find(7, v); !ok || got != 70 {
			t.Fatalf("%s: Find = %d,%v", name, got, ok)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
	}
}

func TestFileBackedReopenViaFacade(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("file-backed pools are linux-only")
	}
	path := filepath.Join(t.TempDir(), "pool.img")
	s, err := NewPSkipList(Options{Path: path, PoolBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		s.Insert(i, i*2)
		s.Tag()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenPSkipList(Options{Path: path, RebuildThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok := s2.Find(50, s2.CurrentVersion()); !ok || got != 100 {
		t.Fatalf("after reopen: %d,%v", got, ok)
	}
}

func TestCompactFacade(t *testing.T) {
	s, err := NewPSkipList(Options{PoolBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(0); i < 100; i++ {
		s.Insert(1, i) // 100 versions of one key
		s.Tag()
	}
	compacted, err := CompactPSkipList(s, Options{PoolBytes: 32 << 20}, 95)
	if err != nil {
		t.Fatal(err)
	}
	defer compacted.Close()
	if got := len(compacted.ExtractHistory(1)); got != 5 {
		t.Fatalf("compacted history has %d events", got)
	}
	for v := uint64(95); v < 100; v++ {
		got, ok := compacted.Find(1, v)
		want, wok := s.Find(1, v)
		if ok != wok || got != want {
			t.Fatalf("v%d: %d,%v vs %d,%v", v, got, ok, want, wok)
		}
	}
	// only PSkipList stores can be compacted
	if _, err := CompactPSkipList(NewESkipList(), Options{}, 0); err == nil {
		t.Fatal("compacting a non-PSkipList store succeeded")
	}
}

func TestRangeFacade(t *testing.T) {
	s, err := NewPSkipList(Options{PoolBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for k := uint64(10); k <= 50; k += 10 {
		s.Insert(k, k)
	}
	v := s.Tag()
	got := s.ExtractRange(15, 45, v)
	if len(got) != 3 || got[0].Key != 20 || got[2].Key != 40 {
		t.Fatalf("range = %v", got)
	}
}

func TestDistributedFacade(t *testing.T) {
	const ranks = 4
	keys := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	err := RunLocalCluster(ranks, NetModel{}, func(c *Comm) error {
		local := NewESkipList()
		defer local.Close()
		for _, k := range keys {
			if PartitionOwner(k, ranks) == c.Rank() {
				local.Insert(k, k*10)
				local.Tag()
			}
		}
		svc := NewDistService(c, local, 2)
		if c.Rank() != 0 {
			return svc.Serve()
		}
		defer svc.Shutdown()
		snap, err := svc.ExtractSnapshotOpt(Marker - 1)
		if err != nil {
			return err
		}
		if len(snap) != len(keys) {
			t.Errorf("snapshot has %d pairs", len(snap))
		}
		if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Key < snap[j].Key }) {
			t.Error("snapshot unsorted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
