#!/usr/bin/env bash
# verify.sh — the repo's merge gates in one command:
#
#   1. tier-1: go build + full go test
#   2. go vet
#   3. network robustness: race-enabled kvnet + cluster suites
#   4. fault tolerance: race-enabled dist rank-crash/rejoin suite, under a
#      hard timeout so a protocol hang fails the gate instead of wedging CI
#   5. snapshot extraction: race-enabled parallel-extract/stream/chunk
#      differential suites
#   6. batch smoke: batched insert at batch=64 must beat single-op insert
#      under the default 200ns emulated persist latency
#   7. extract-figure smoke: benchkv extract must produce a well-formed
#      BENCH_extract.json with every row a full, non-empty extraction
#
# Exits non-zero on the first failing gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gate 1: build =="
go build ./...

echo "== gate 2: vet =="
go vet ./...

echo "== gate 3: tests =="
go test ./...

echo "== gate 4: network robustness (race) =="
go test -race -short ./internal/kvnet/ ./internal/cluster/

echo "== gate 5: fault tolerance (race, no-hang) =="
# Every failure path in the degraded/rejoin protocol is deadline-bounded;
# -timeout turns any regression into a hang-free gate failure.
go test -race -short -timeout 120s ./internal/dist/ ./internal/cluster/

echo "== gate 6: snapshot extraction (race) =="
# Differential suites: parallel extraction must be byte-identical to the
# sequential walk, chunked/streamed wire paths must reassemble exactly, and
# a mid-stream drop must surface a typed error, never a silent partial.
go test -race -short -run 'Extract|Stream|Split|Chunk|Stitch|RangeFrom|Estimate' \
  ./internal/skiplist/ ./internal/core/ ./internal/kvnet/

echo "== gate 7: batch-vs-single smoke =="
tmpbin="$(mktemp -d)/benchkv"
trap 'rm -rf "$(dirname "$tmpbin")"' EXIT
go build -o "$tmpbin" ./cmd/benchkv
"$tmpbin" -n 20000 -reps 3 -batches 1,64 -csv batch | awk -F, '
  $1 == "batch-local" && $4 == 1  { single = $8; sp = $9 }
  $1 == "batch-local" && $4 == 64 { batch = $8; bp = $9 }
  END {
    if (single == "" || batch == "") { print "FAIL: batch rows missing from benchkv output"; exit 1 }
    printf "batch-local: single-op %.0f ops/s (%d persists), batch=64 %.0f ops/s (%d persists) -> %.2fx\n",
           single, sp, batch, bp, batch / single
    if (batch + 0 <= single + 0) { print "FAIL: batched insert at batch=64 is not faster than single-op"; exit 1 }
    if (bp + 0 >= sp + 0) { print "FAIL: batched insert did not reduce persist fences"; exit 1 }
  }'

echo "== gate 8: extract-figure smoke =="
extjson="$(dirname "$tmpbin")/BENCH_extract_smoke.json"
"$tmpbin" -n 20000 -reps 1 -threads 1,2,4 -json "$extjson" extract >/dev/null
# The harness already validates every timed run against the expected pair
# count; here we check the artifact itself: three local rows (threads
# 1,2,4), three wire rows (single-frame/chunked/stream), none empty.
grep -c '"figure": "extract-local"' "$extjson" | awk '{ if ($1 != 3) { print "FAIL: expected 3 extract-local rows, got " $1; exit 1 } }'
grep -c '"figure": "extract-tcp"' "$extjson" | awk '{ if ($1 != 3) { print "FAIL: expected 3 extract-tcp rows, got " $1; exit 1 } }'
if grep -q '"pairs": 0' "$extjson"; then
  echo "FAIL: extract figure produced an empty extraction"
  exit 1
fi
echo "extract-figure smoke: $(grep -c '"figure"' "$extjson") rows, all non-empty"

echo "verify: all gates passed"
