#!/usr/bin/env bash
# verify.sh — the repo's merge gates in one command:
#
#   1. tier-1: go build + full go test
#   2. go vet
#   3. network robustness: race-enabled kvnet + cluster suites
#   4. fault tolerance: race-enabled dist rank-crash/rejoin suite, under a
#      hard timeout so a protocol hang fails the gate instead of wedging CI
#   5. snapshot extraction: race-enabled parallel-extract/stream/chunk
#      differential suites
#   6. batch smoke: batched insert at batch=64 must beat single-op insert
#      under the default 200ns emulated persist latency
#   7. extract-figure smoke: benchkv extract must produce a well-formed
#      BENCH_extract.json with every row a full, non-empty extraction
#   8. observability: race-enabled obs suite, then an end-to-end smoke —
#      start mvkvd with -debug-addr, drive a scripted workload through
#      mvkvctl, and require `mvkvctl stats` and the expvar endpoint to
#      reconcile exactly with the operations issued
#   9. group commit: race-enabled pipeline suites (dispatcher, crash-point
#      sweep, SIGKILL recovery, many-connection TCP), then a benchkv smoke —
#      16 uncoordinated writers through the pipeline must coalesce to under
#      2.0 persist fences per entry (the unpipelined path pays ~7)
#  10. version GC + hot cache: race-enabled tag-watermark GC, snapshot
#      pinning (local, TCP, cluster), hot-key cache and free-list suites,
#      both GC crash harnesses, then a benchkv soak smoke — 50k overwrites
#      with GC on must keep the arena high-water mark bounded (< 2x growth
#      past the one-third checkpoint, BENCH_soak.json "bounded": true)
#  11. pipelined wire protocol: race-enabled tagged-frame/multiplexing
#      suites (handshake fallback both ways, malformed tagged frames,
#      session dedupe across reconnect, storetest conformance over the
#      pipelined transport incl. fault injection, net.pipe.* reconciliation)
#      plus the windowed dist batch scatter, then a benchkv pipeline smoke —
#      64 writers multiplexed on ONE connection must beat the one-at-a-time
#      client on throughput and coalesce to under 2.0 persists/entry
#  13. transactions: race-enabled txn suites — storetest
#      Transactions over all five stores, TCP (legacy + pipelined) and the
#      4-rank cluster, the all-or-nothing commit crash-point sweep, the
#      pin-refcount race and hot-cache differential regressions, the
#      malformed-commit-frame corpus and commit dedupe across reconnect,
#      the two-phase cluster commit fault suite and the CLI txn/watch
#      plumbing — then a benchkv txn smoke: first-committer-wins must
#      abort a nonzero fraction of contended commits and exactly zero
#      disjoint ones
#
# Exits non-zero on the first failing gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gate 1: build =="
go build ./...

echo "== gate 2: vet =="
go vet ./...

echo "== gate 3: tests =="
go test ./...

echo "== gate 4: network robustness (race) =="
go test -race -short ./internal/kvnet/ ./internal/cluster/

echo "== gate 5: fault tolerance (race, no-hang) =="
# Every failure path in the degraded/rejoin protocol is deadline-bounded;
# -timeout turns any regression into a hang-free gate failure.
go test -race -short -timeout 120s ./internal/dist/ ./internal/cluster/

echo "== gate 6: snapshot extraction (race) =="
# Differential suites: parallel extraction must be byte-identical to the
# sequential walk, chunked/streamed wire paths must reassemble exactly, and
# a mid-stream drop must surface a typed error, never a silent partial.
go test -race -short -run 'Extract|Stream|Split|Chunk|Stitch|RangeFrom|Estimate' \
  ./internal/skiplist/ ./internal/core/ ./internal/kvnet/

echo "== gate 7: batch-vs-single smoke =="
tmpbin="$(mktemp -d)/benchkv"
trap 'rm -rf "$(dirname "$tmpbin")"' EXIT
go build -o "$tmpbin" ./cmd/benchkv
"$tmpbin" -n 20000 -reps 3 -batches 1,64 -csv batch | awk -F, '
  $1 == "batch-local" && $4 == 1  { single = $8; sp = $9 }
  $1 == "batch-local" && $4 == 64 { batch = $8; bp = $9 }
  END {
    if (single == "" || batch == "") { print "FAIL: batch rows missing from benchkv output"; exit 1 }
    printf "batch-local: single-op %.0f ops/s (%d persists), batch=64 %.0f ops/s (%d persists) -> %.2fx\n",
           single, sp, batch, bp, batch / single
    if (batch + 0 <= single + 0) { print "FAIL: batched insert at batch=64 is not faster than single-op"; exit 1 }
    if (bp + 0 >= sp + 0) { print "FAIL: batched insert did not reduce persist fences"; exit 1 }
  }'

echo "== gate 8: extract-figure smoke =="
extjson="$(dirname "$tmpbin")/BENCH_extract_smoke.json"
"$tmpbin" -n 20000 -reps 1 -threads 1,2,4 -json "$extjson" extract >/dev/null
# The harness already validates every timed run against the expected pair
# count; here we check the artifact itself: three local rows (threads
# 1,2,4), three wire rows (single-frame/chunked/stream), none empty.
grep -c '"figure": "extract-local"' "$extjson" | awk '{ if ($1 != 3) { print "FAIL: expected 3 extract-local rows, got " $1; exit 1 } }'
grep -c '"figure": "extract-tcp"' "$extjson" | awk '{ if ($1 != 3) { print "FAIL: expected 3 extract-tcp rows, got " $1; exit 1 } }'
if grep -q '"pairs": 0' "$extjson"; then
  echo "FAIL: extract figure produced an empty extraction"
  exit 1
fi
echo "extract-figure smoke: $(grep -c '"figure"' "$extjson") rows, all non-empty"

echo "== gate 9: observability (race + live smoke) =="
go test -race -short ./internal/obs/

tmpdir="$(dirname "$tmpbin")"
go build -o "$tmpdir/mvkvd" ./cmd/mvkvd
go build -o "$tmpdir/mvkvctl" ./cmd/mvkvctl
"$tmpdir/mvkvd" -pool "$tmpdir/obs.pool" -create -size 67108864 \
  -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 2>"$tmpdir/mvkvd.log" &
mvkvd_pid=$!
trap 'kill "$mvkvd_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/.*serving pool .* on \([0-9.:]*\) .*/\1/p' "$tmpdir/mvkvd.log" | head -1)"
  dbg="$(sed -n 's|.*debug listener on http://\([0-9.:]*\)/debug/.*|\1|p' "$tmpdir/mvkvd.log" | head -1)"
  [ -n "$addr" ] && [ -n "$dbg" ] && break
  sleep 0.1
done
if [ -z "$addr" ] || [ -z "$dbg" ]; then
  echo "FAIL: mvkvd did not announce its listeners"; cat "$tmpdir/mvkvd.log"; exit 1
fi
"$tmpdir/mvkvctl" put  "tcp://$addr" 1 10 2 20 >/dev/null
"$tmpdir/mvkvctl" tag  "tcp://$addr" >/dev/null
"$tmpdir/mvkvctl" get  "tcp://$addr" 1 >/dev/null
stats="$("$tmpdir/mvkvctl" stats "tcp://$addr" -json)"
for want in '"store.ops.insert": 2' '"store.ops.find": 1' '"store.ops.tag": 1'; do
  if ! printf '%s' "$stats" | grep -qF "$want"; then
    echo "FAIL: mvkvctl stats does not reconcile: missing $want"
    printf '%s\n' "$stats"; exit 1
  fi
done
if command -v curl >/dev/null; then
  vars="$(curl -s "http://$dbg/debug/vars")"
else
  vars="$(wget -qO- "http://$dbg/debug/vars")"
fi
# expvar emits compact JSON (no space after the colon)
for want in '"store.ops.insert":2' '"store.ops.find":1'; do
  if ! printf '%s' "$vars" | grep -qF "$want"; then
    echo "FAIL: expvar does not agree with mvkvctl stats: missing $want"; exit 1
  fi
done
kill "$mvkvd_pid"; wait "$mvkvd_pid" 2>/dev/null || true
echo "observability smoke: wire stats and expvar reconcile with the scripted workload"

echo "== gate 10: group commit (race + coalescing smoke) =="
# Dispatcher, conformance-under-pipeline, crash-point sweep, real-SIGKILL
# recovery, and the many-connection TCP load test, all race-enabled.
go test -race -short -timeout 300s -run 'GroupCommit' \
  ./internal/core/ ./internal/kvnet/

# Coalescing smoke: 16 uncoordinated single-insert writers through the
# pipeline. The unpipelined write path pays the full per-entry fence
# schedule (~7 persists/entry); the dispatcher must get under 2.0.
"$tmpbin" -n 5000 -reps 1 -threads 16 -csv groupcommit | awk -F, '
  $1 == "gc-off" && $4 == 16 { offp = $9; ops = $6 }
  $1 == "gc-on"  && $4 == 16 { onp = $9 }
  END {
    if (ops == "" || onp == "") { print "FAIL: groupcommit rows missing from benchkv output"; exit 1 }
    printf "groupcommit: 16 writers, %.2f persists/entry pipelined vs %.2f unpipelined\n",
           onp / ops, offp / ops
    if (onp / ops >= 2.0) { print "FAIL: pipeline did not coalesce fences (persists/entry >= 2.0)"; exit 1 }
    if (onp + 0 >= offp + 0) { print "FAIL: pipelined run persisted no less than unpipelined"; exit 1 }
  }'

echo "== gate 11: version GC + hot cache (race + soak smoke) =="
# Tag-watermark GC suites, the hot-key cache differential/metrics suites,
# free-list recycling, both GC crash harnesses (persist-boundary sweep +
# real SIGKILL mid-pass), the snapshot-pinning contract locally and over
# the TCP and cluster wire paths, and the CLI pin/unpin/gc plumbing.
go test -race -short -timeout 300s \
  -run 'TestGC|TestHotCache|TestFreeList|TestCrashPointSweepGC|TestProcCrashVersionGC|TestConformance/SnapshotPinning' \
  ./internal/pmem/ ./internal/core/
go test -race -short -timeout 300s -run 'TestConformanceOverTCP/SnapshotPinning' ./internal/kvnet/
go test -race -short -timeout 120s -run 'TestClusterStoreConformance/SnapshotPinning' ./internal/dist/
go test -race -short -run 'TestCLIPinGC' ./cmd/mvkvctl/

# Soak smoke: 50k overwrites on 4 keys. With GC on, the arena high-water
# mark must grow less than 2x after the one-third checkpoint — freed
# version segments recycle through the pmem free lists instead of claiming
# new heap. benchkv writes BENCH_soak.json into its cwd, so run in tmpdir
# to leave the repo's recorded figure untouched.
(cd "$tmpdir" && "$tmpbin" -n 50000 -soakkeys 4 -reps 2 soak >/dev/null 2>&1)
if ! grep -q '"bounded": true' "$tmpdir/BENCH_soak.json"; then
  echo "FAIL: soak smoke: GC-on arena high-water mark not bounded"
  cat "$tmpdir/BENCH_soak.json"
  exit 1
fi
echo "soak smoke: GC-on $(grep -o '"growth_ratio_end_vs_checkpoint": [0-9.]*' "$tmpdir/BENCH_soak.json" | head -1 | awk '{print $2}')x growth past checkpoint -> bounded"

echo "== gate 12: pipelined wire protocol (race + multiplexing smoke) =="
# Tagged-frame corpus and fuzz seeds, handshake fallback in both mixed-version
# directions, session mutation dedupe (in-connection and across reconnect),
# full storetest conformance over the pipelined transport (plain, group-commit
# and fault-injecting), net.pipe.* metric reconciliation, pooled-connection
# idle TTL, and the windowed dist batch scatter with its reply cache.
go test -race -short -timeout 300s \
  -run 'TestPipe|TestLegacyClient|TestConformanceOverPipelined|TestIdleConn' \
  ./internal/kvnet/
go test -race -short -timeout 120s \
  -run 'TestChunkPairs|TestWriteReplyCache|TestInsertBatchWindowed' ./internal/dist/

# Multiplexing smoke: 64 uncoordinated writers sharing ONE TCP connection
# into a group-commit server. One-at-a-time, the writers serialize on the
# socket and every entry pays the full fence schedule; pipelined at
# MaxInFlight=64 the tagged window must win on throughput and feed the
# group-commit coalescing to under 2.0 persists/entry. benchkv writes
# BENCH_pipeline.json into its cwd, so run in tmpdir to leave the repo's
# recorded figure untouched.
(cd "$tmpdir" && "$tmpbin" -n 10000 -reps 1 -depths 64 -csv pipeline 2>/dev/null) | awk -F, '
  $1 == "pipe-off" && $4 == 64 { off = $8 }
  $1 == "pipe-on"  && $4 == 64 { on = $8; onp = $9; ops = $6 }
  END {
    if (off == "" || on == "") { print "FAIL: pipeline rows missing from benchkv output"; exit 1 }
    printf "pipeline: depth 64 on one conn, %.0f ops/s pipelined vs %.0f one-at-a-time (%.1fx), %.2f persists/entry\n",
           on, off, on / off, onp / ops
    if (on + 0 <= off + 0) { print "FAIL: pipelined single connection is not faster than one-at-a-time"; exit 1 }
    if (onp / ops >= 2.0) { print "FAIL: pipelined window did not coalesce fences (persists/entry >= 2.0)"; exit 1 }
  }'

echo "== gate 13: transactions (race + conflict-rate smoke) =="
# The optimistic multi-key txn surface end to end: conflict matrix and
# aborted-txn invisibility over every store (storetest Transactions runs
# inside each conformance suite), the commit path's all-or-nothing
# crash-point sweep and group-commit composition, the pin-refcount race and
# hot-cache invalidation regressions, the malformed txn frame corpus plus
# exactly-once commit retry over reconnect, the two-phase cluster commit
# (conflict, lost-ack retry, prepare-stage abort), and the CLI txn script /
# stats-watch elapsed fixes.
go test -race -short -timeout 300s \
  -run 'TestTxn|TestCrashPointSweepTxnCommit|TestPinRefcountRace|TestHotCacheTxnDifferential|TestConformance/Transactions' \
  ./internal/core/
go test -race -short -timeout 300s \
  -run 'TestTxnCommitOverTCP|TestServerMalformedTxnRequests|TestTxnCommitDedupeAcrossReconnect|TestConformanceOverTCP/Transactions|TestConformanceOverPipelinedTCP/Transactions' \
  ./internal/kvnet/
go test -race -short -timeout 120s \
  -run 'TestClusterTxn|TestClusterStoreConformance/Transactions' ./internal/dist/
go test -race -short -run 'TestCLITxn|TestCLIStatsWatchElapsed' ./cmd/mvkvctl/
go test -race -short -run 'TestRunTxnSweep' ./internal/harness/

# Conflict-rate smoke: at 4 concurrent committers, the contended hot-set
# workload must see first-committer-wins aborts (nonzero abort count) while
# per-worker disjoint write sets must never abort. benchkv writes
# BENCH_txn.json into its cwd, so run in tmpdir to leave the repo's
# recorded figure untouched.
(cd "$tmpdir" && "$tmpbin" -n 4000 -reps 1 -txnthreads 4 txn >/dev/null 2>&1)
awk '
  /"mode": "txn-contended"/ { mode = "c" }
  /"mode": "txn-disjoint"/  { mode = "d" }
  /"aborts":/ { gsub(/[^0-9]/, ""); if (mode == "c") ca += $0; else da += $0; seen = 1 }
  END {
    if (!seen) { print "FAIL: BENCH_txn.json has no abort rows"; exit 1 }
    printf "txn smoke: contended aborts %d, disjoint aborts %d\n", ca, da
    if (ca == 0) { print "FAIL: contended txn workload produced zero aborts"; exit 1 }
    if (da != 0) { print "FAIL: disjoint txn workload aborted"; exit 1 }
  }' "$tmpdir/BENCH_txn.json"

echo "verify: all gates passed"
